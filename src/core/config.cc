#include "core/config.hh"

#include <stdexcept>

namespace lergan {

const char *
connectionName(Connection connection)
{
    return connection == Connection::HTree ? "2D" : "3D";
}

const char *
reshapeModeName(ReshapeMode mode)
{
    return mode == ReshapeMode::Zfdr ? "ZFDR" : "NR";
}

ReplicaDegree
AcceleratorConfig::degreeFor(Phase phase) const
{
    auto it = phaseDegrees.find(phase);
    return it == phaseDegrees.end() ? degree : it->second;
}

void
FaultConfig::checkUsable() const
{
    const auto check_rate = [](const char *name, double value) {
        if (!(value >= 0.0 && value <= 1.0))
            throw std::invalid_argument(
                std::string(name) + " must be in [0, 1], got " +
                std::to_string(value));
    };
    check_rate("faults.cellStuckRate", cellStuckRate);
    check_rate("faults.stuckAtLrsShare", stuckAtLrsShare);
    check_rate("faults.columnStuckRate", columnStuckRate);
    check_rate("faults.tileKillRate", tileKillRate);
    check_rate("faults.cellTolerance", cellTolerance);
    check_rate("faults.columnTolerance", columnTolerance);
    check_rate("faults.tileDeadCrossbarTolerance",
               tileDeadCrossbarTolerance);
    if (priorIterations < 0.0)
        throw std::invalid_argument(
            "faults.priorIterations must be >= 0, got " +
            std::to_string(priorIterations));
    if (cellEndurance <= 0.0)
        throw std::invalid_argument(
            "faults.cellEndurance must be positive, got " +
            std::to_string(cellEndurance));
}

void
AcceleratorConfig::checkUsable() const
{
    if (batchSize <= 0)
        throw std::invalid_argument(
            "batchSize must be positive, got " +
            std::to_string(batchSize));
    if (cuPairs <= 0)
        throw std::invalid_argument("cuPairs must be positive, got " +
                                    std::to_string(cuPairs));
    if (normalizedSpace && spaceBudgetCrossbars == 0)
        throw std::invalid_argument(
            "normalizedSpace needs a spaceBudgetCrossbars budget");
    faults.checkUsable();
}

std::string
AcceleratorConfig::label() const
{
    std::string text = std::string(connectionName(connection)) + "+" +
                       reshapeModeName(reshape);
    if (duplicate)
        text += std::string("(") + replicaDegreeName(degree) + ")";
    else
        text += "(nodup)";
    if (normalizedSpace)
        text += "-NS";
    return text;
}

AcceleratorConfig
AcceleratorConfig::lerGan(ReplicaDegree degree)
{
    AcceleratorConfig config;
    config.connection = Connection::ThreeD;
    config.reshape = ReshapeMode::Zfdr;
    config.degree = degree;
    config.duplicate = true;
    return config;
}

AcceleratorConfig
AcceleratorConfig::prime()
{
    // The paper's baseline is PRIME modified for GAN training, i.e. a
    // PipeLayer-style design: conventional H-tree banks, normal
    // (zero-carrying) reshaping, and naive kernel duplication for
    // intra-layer parallelism.
    AcceleratorConfig config;
    config.connection = Connection::HTree;
    config.reshape = ReshapeMode::Normal;
    config.degree = ReplicaDegree::Middle;
    config.duplicate = true;
    return config;
}

} // namespace lergan
