#include "core/sweep_io.hh"

#include "common/json.hh"
#include "critpath/critpath.hh"
#include "telemetry/profiler.hh"

namespace lergan {

namespace {

/**
 * RFC 4180 field quoting: a field containing a comma, quote, CR or LF
 * is wrapped in quotes with embedded quotes doubled. Everything else
 * passes through unchanged (so ordinary exports stay byte-stable).
 */
/** Emit one TrialDistribution as a JSON object. */
void
writeDistribution(JsonWriter &json, const char *key,
                  const TrialDistribution &dist)
{
    json.key(key).beginObject();
    json.key("mean").value(dist.mean);
    json.key("p95").value(dist.p95);
    json.key("min").value(dist.min);
    json.key("max").value(dist.max);
    json.endObject();
}

std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\r\n") == std::string::npos)
        return text;
    std::string quoted;
    quoted.reserve(text.size() + 2);
    quoted += '"';
    for (char c : text) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

void
writeSweepJson(std::ostream &os, const std::vector<SweepResult> &results,
               const SweepTelemetrySummary *summary)
{
    const auto scope = HostProfiler::global().scope("export");
    JsonWriter json(os);
    if (summary)
        json.beginObject().key("points");
    json.beginArray();
    for (const SweepResult &result : results) {
        json.beginObject();
        json.key("benchmark").value(result.benchmark);
        json.key("config").value(result.configLabel);
        if (result.failed) {
            json.key("failed").value(true);
            json.key("error").value(result.error);
            if (result.faults.ran()) {
                // A Monte Carlo point whose every trial failed still
                // reports how many trials it attempted.
                json.key("faults").beginObject();
                json.key("trials").value(
                    static_cast<std::uint64_t>(result.faults.trials));
                json.key("failed_trials")
                    .value(static_cast<std::uint64_t>(
                        result.faults.failedTrials));
                json.endObject();
            }
            json.endObject();
            continue;
        }
        json.key("ms_per_iteration").value(result.report.timeMs());
        json.key("mj_per_iteration")
            .value(pjToMj(result.report.totalEnergyPj()));
        json.key("crossbars").value(result.crossbarsUsed);
        json.key("oversubscribed").value(result.oversubscribed);
        if (result.faults.ran()) {
            json.key("faults").beginObject();
            json.key("trials").value(
                static_cast<std::uint64_t>(result.faults.trials));
            json.key("failed_trials").value(static_cast<std::uint64_t>(
                result.faults.failedTrials));
            writeDistribution(json, "ms_per_iteration",
                              result.faults.msPerIteration);
            writeDistribution(json, "mj_per_iteration",
                              result.faults.mjPerIteration);
            writeDistribution(json, "capacity_lost",
                              result.faults.capacityLost);
            json.endObject();
        }
        if (result.audit.ran) {
            json.key("audit").beginObject();
            json.key("ok").value(result.audit.ok());
            json.key("checks")
                .value(static_cast<std::uint64_t>(
                    result.audit.checksRun));
            if (!result.audit.ok()) {
                json.key("failures").beginArray();
                for (const AuditFinding &finding :
                     result.audit.failures) {
                    json.beginObject();
                    json.key("check").value(finding.check);
                    json.key("detail").value(finding.detail);
                    json.endObject();
                }
                json.endArray();
            }
            json.endObject();
        }
        if (result.telemetry.ran) {
            json.key("telemetry").beginObject();
            json.key("cache_hit").value(result.telemetry.cacheHit);
            json.key("host_ms").value(result.telemetry.hostMs);
            if (result.telemetry.traced) {
                // Only traced runs carry the span fields, so untraced
                // exports keep the exact historical shape.
                json.key("spans").value(result.telemetry.spanCount);
                json.key("queue_wait_ms")
                    .value(result.telemetry.queueWaitMs);
            }
            json.endObject();
        }
        if (result.report.critpath) {
            // Only points that recorded carry the object, so default
            // sweeps export the exact historical shape.
            const CriticalPath &path = result.report.critpath->path;
            json.key("critpath").beginObject();
            json.key("makespan_ms").value(psToMs(path.makespan));
            json.key("links").value(
                static_cast<std::uint64_t>(path.entries.size()));
            json.key("zero_slack_tasks").value(
                static_cast<std::uint64_t>(path.zeroSlackTasks()));
            json.key("by_phase").beginObject();
            for (const auto &[name, time] : path.phaseRollup)
                json.key(name).value(psToMs(time));
            json.endObject();
            json.key("by_resource").beginObject();
            for (const auto &[name, time] : path.resourceRollup)
                json.key(name).value(psToMs(time));
            json.endObject();
            json.endObject();
        }
        json.key("stats").beginObject();
        for (const auto &[name, value] : result.report.stats)
            json.key(name).value(value);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    if (summary) {
        json.key("cache").beginObject();
        json.key("hits").value(summary->cacheHits);
        json.key("misses").value(summary->cacheMisses);
        json.endObject();
        json.key("wall_ms").value(summary->wallMs);
        json.endObject();
    }
    os << '\n';
}

void
writeSweepCsv(std::ostream &os, const std::vector<SweepResult> &results,
              const SweepTelemetrySummary *summary)
{
    const auto scope = HostProfiler::global().scope("export");
    // Monte Carlo columns appear only when some result carries trial
    // distributions, so plain sweeps export the exact historical shape;
    // telemetry columns follow the same pattern.
    bool any_faults = false;
    bool any_telemetry = false;
    bool any_traced = false;
    bool any_critpath = false;
    for (const SweepResult &result : results) {
        any_faults = any_faults || result.faults.ran();
        any_telemetry = any_telemetry || result.telemetry.ran;
        any_traced = any_traced || result.telemetry.traced;
        any_critpath = any_critpath || result.report.critpath != nullptr;
    }

    os << "benchmark,config,ms_per_iteration,mj_per_iteration,"
          "crossbars,oversubscribed,energy_compute_pj,energy_comm_pj,"
          "energy_update_pj,error";
    if (any_faults) {
        os << ",trials,failed_trials,ms_mean,ms_p95,mj_mean,mj_p95,"
              "capacity_lost_mean,capacity_lost_p95";
    }
    if (any_telemetry)
        os << ",cache_hit,host_ms";
    if (any_traced)
        os << ",span_count,queue_wait_ms";
    if (any_critpath)
        os << ",crit_links,crit_zero_slack,crit_top_phase";
    os << '\n';
    for (const SweepResult &result : results) {
        os << csvField(result.benchmark) << ','
           << csvField(result.configLabel) << ',';
        if (result.failed) {
            // No metrics exist for a failed point; emitting a
            // default-constructed report's zeros would be
            // indistinguishable from real values.
            os << ",,,,,,," << csvField(result.error);
            if (any_faults) {
                if (result.faults.ran()) {
                    os << ',' << result.faults.trials << ','
                       << result.faults.failedTrials << ",,,,,,";
                } else {
                    os << ",,,,,,,,";
                }
            }
            if (any_telemetry)
                os << ",,";
            if (any_traced)
                os << ",,";
            if (any_critpath)
                os << ",,,";
            os << '\n';
            continue;
        }
        os << result.report.timeMs() << ','
           << pjToMj(result.report.totalEnergyPj()) << ','
           << result.crossbarsUsed << ',' << result.oversubscribed << ','
           << result.report.computeEnergyPj() << ','
           << result.report.commEnergyPj() << ','
           << result.report.stats.get("energy.update") << ',';
        if (any_faults) {
            if (result.faults.ran()) {
                os << ',' << result.faults.trials << ','
                   << result.faults.failedTrials << ','
                   << result.faults.msPerIteration.mean << ','
                   << result.faults.msPerIteration.p95 << ','
                   << result.faults.mjPerIteration.mean << ','
                   << result.faults.mjPerIteration.p95 << ','
                   << result.faults.capacityLost.mean << ','
                   << result.faults.capacityLost.p95;
            } else {
                os << ",,,,,,,,";
            }
        }
        if (any_telemetry) {
            if (result.telemetry.ran) {
                os << ',' << (result.telemetry.cacheHit ? 1 : 0) << ','
                   << result.telemetry.hostMs;
            } else {
                os << ",,";
            }
        }
        if (any_traced) {
            if (result.telemetry.traced) {
                os << ',' << result.telemetry.spanCount << ','
                   << result.telemetry.queueWaitMs;
            } else {
                os << ",,";
            }
        }
        if (any_critpath) {
            if (result.report.critpath) {
                const CriticalPath &path = result.report.critpath->path;
                os << ',' << path.entries.size() << ','
                   << path.zeroSlackTasks() << ','
                   << csvField(path.phaseRollup.empty()
                                   ? ""
                                   : path.phaseRollup.front().first);
            } else {
                os << ",,,";
            }
        }
        os << '\n';
    }
    if (summary) {
        os << "# cache_hits=" << summary->cacheHits
           << " cache_misses=" << summary->cacheMisses
           << " wall_ms=" << summary->wallMs << '\n';
    }
}

void
ExperimentSweep::writeJson(std::ostream &os,
                           const std::vector<SweepResult> &results)
{
    writeSweepJson(os, results);
}

void
ExperimentSweep::writeCsv(std::ostream &os,
                          const std::vector<SweepResult> &results)
{
    writeSweepCsv(os, results);
}

} // namespace lergan
