#include "core/sweep_io.hh"

#include "common/json.hh"

namespace lergan {

void
writeSweepJson(std::ostream &os, const std::vector<SweepResult> &results)
{
    JsonWriter json(os);
    json.beginArray();
    for (const SweepResult &result : results) {
        json.beginObject();
        json.key("benchmark").value(result.benchmark);
        json.key("config").value(result.configLabel);
        if (result.failed) {
            json.key("failed").value(true);
            json.key("error").value(result.error);
            json.endObject();
            continue;
        }
        json.key("ms_per_iteration").value(result.report.timeMs());
        json.key("mj_per_iteration")
            .value(pjToMj(result.report.totalEnergyPj()));
        json.key("crossbars").value(result.crossbarsUsed);
        json.key("oversubscribed").value(result.oversubscribed);
        json.key("stats").beginObject();
        for (const auto &[name, value] : result.report.stats)
            json.key(name).value(value);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    os << '\n';
}

void
writeSweepCsv(std::ostream &os, const std::vector<SweepResult> &results)
{
    os << "benchmark,config,ms_per_iteration,mj_per_iteration,"
          "crossbars,oversubscribed,energy_compute_pj,energy_comm_pj,"
          "energy_update_pj\n";
    for (const SweepResult &result : results) {
        os << result.benchmark << ',' << result.configLabel << ','
           << result.report.timeMs() << ','
           << pjToMj(result.report.totalEnergyPj()) << ','
           << result.crossbarsUsed << ',' << result.oversubscribed << ','
           << result.report.computeEnergyPj() << ','
           << result.report.commEnergyPj() << ','
           << result.report.stats.get("energy.update") << '\n';
    }
}

void
ExperimentSweep::writeJson(std::ostream &os,
                           const std::vector<SweepResult> &results)
{
    writeSweepJson(os, results);
}

void
ExperimentSweep::writeCsv(std::ostream &os,
                          const std::vector<SweepResult> &results)
{
    writeSweepCsv(os, results);
}

} // namespace lergan
