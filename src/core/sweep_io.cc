#include "core/sweep_io.hh"

#include "common/json.hh"

namespace lergan {

namespace {

/**
 * RFC 4180 field quoting: a field containing a comma, quote, CR or LF
 * is wrapped in quotes with embedded quotes doubled. Everything else
 * passes through unchanged (so ordinary exports stay byte-stable).
 */
std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\r\n") == std::string::npos)
        return text;
    std::string quoted;
    quoted.reserve(text.size() + 2);
    quoted += '"';
    for (char c : text) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

void
writeSweepJson(std::ostream &os, const std::vector<SweepResult> &results)
{
    JsonWriter json(os);
    json.beginArray();
    for (const SweepResult &result : results) {
        json.beginObject();
        json.key("benchmark").value(result.benchmark);
        json.key("config").value(result.configLabel);
        if (result.failed) {
            json.key("failed").value(true);
            json.key("error").value(result.error);
            json.endObject();
            continue;
        }
        json.key("ms_per_iteration").value(result.report.timeMs());
        json.key("mj_per_iteration")
            .value(pjToMj(result.report.totalEnergyPj()));
        json.key("crossbars").value(result.crossbarsUsed);
        json.key("oversubscribed").value(result.oversubscribed);
        if (result.audit.ran) {
            json.key("audit").beginObject();
            json.key("ok").value(result.audit.ok());
            json.key("checks")
                .value(static_cast<std::uint64_t>(
                    result.audit.checksRun));
            if (!result.audit.ok()) {
                json.key("failures").beginArray();
                for (const AuditFinding &finding :
                     result.audit.failures) {
                    json.beginObject();
                    json.key("check").value(finding.check);
                    json.key("detail").value(finding.detail);
                    json.endObject();
                }
                json.endArray();
            }
            json.endObject();
        }
        json.key("stats").beginObject();
        for (const auto &[name, value] : result.report.stats)
            json.key(name).value(value);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    os << '\n';
}

void
writeSweepCsv(std::ostream &os, const std::vector<SweepResult> &results)
{
    os << "benchmark,config,ms_per_iteration,mj_per_iteration,"
          "crossbars,oversubscribed,energy_compute_pj,energy_comm_pj,"
          "energy_update_pj,error\n";
    for (const SweepResult &result : results) {
        os << csvField(result.benchmark) << ','
           << csvField(result.configLabel) << ',';
        if (result.failed) {
            // No metrics exist for a failed point; emitting a
            // default-constructed report's zeros would be
            // indistinguishable from real values.
            os << ",,,,,,," << csvField(result.error) << '\n';
            continue;
        }
        os << result.report.timeMs() << ','
           << pjToMj(result.report.totalEnergyPj()) << ','
           << result.crossbarsUsed << ',' << result.oversubscribed << ','
           << result.report.computeEnergyPj() << ','
           << result.report.commEnergyPj() << ','
           << result.report.stats.get("energy.update") << ",\n";
    }
}

void
ExperimentSweep::writeJson(std::ostream &os,
                           const std::vector<SweepResult> &results)
{
    writeSweepJson(os, results);
}

void
ExperimentSweep::writeCsv(std::ostream &os,
                          const std::vector<SweepResult> &results)
{
    writeSweepCsv(os, results);
}

} // namespace lergan
