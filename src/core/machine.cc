#include "core/machine.hh"

#include "common/logging.hh"

namespace lergan {

Machine::Machine(const AcceleratorConfig &config) : config_(config)
{
    const bool three_d = config.connection == Connection::ThreeD;
    const ReRamParams &params = config.reram;
    ThreeDOptions options;
    options.horizontal = three_d && config.horizontalWires;
    options.vertical = three_d && config.verticalWires;

    // One generator CU + one discriminator CU per pair.
    LERGAN_ASSERT(config.cuPairs >= 1, "need at least one CU pair");
    for (int pair = 0; pair < config.cuPairs; ++pair) {
        const int base = pair * 6;
        const ThreeDCU cu_g =
            build3dcu(topo_, pool_, params, base, options);
        const ThreeDCU cu_d =
            build3dcu(topo_, pool_, params, base + 3, options);
        for (const auto &bank : cu_g.banks)
            banks_.push_back(bank);
        for (const auto &bank : cu_d.banks)
            banks_.push_back(bank);
    }

    // The shared bus every bank reaches (the conventional path).
    TopoNode bus;
    bus.kind = NodeKind::Bus;
    bus.name = "bus";
    busNode_ = topo_.addNode(bus);
    for (const HTreeBank &bank : banks_)
        addBusLink(topo_, pool_, params, busNode_, bank);

    // The CU-pair bypasses: B1<->B4 and B3<->B6 within each pair
    // (Fig. 13), plus a link between neighboring pairs' generator CUs so
    // multi-CU GANs chain without the bus.
    if (three_d) {
        for (int pair = 0; pair < config.cuPairs; ++pair) {
            const int base = pair * 6;
            addBypassLink(topo_, pool_, params, banks_[base],
                          banks_[base + 3]);
            addBypassLink(topo_, pool_, params, banks_[base + 2],
                          banks_[base + 5]);
            if (pair + 1 < config.cuPairs) {
                addBypassLink(topo_, pool_, params, banks_[base],
                              banks_[base + 6]);
                addBypassLink(topo_, pool_, params, banks_[base + 3],
                              banks_[base + 9]);
            }
        }
    }

    // One compute-pipeline resource per tile.
    tileCompute_.resize(banks_.size());
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        for (int t = 0; t < params.tilesPerBank; ++t) {
            tileCompute_[b].push_back(pool_.create(
                "b" + std::to_string(b) + ".t" + std::to_string(t) +
                ".compute"));
        }
    }
}

const Route &
Machine::routeTiles(int bank_a, int tile_a, int bank_b, int tile_b,
                    bool cmode)
{
    const auto key = std::make_tuple(bank_a, tile_a, bank_b, tile_b, cmode);
    auto it = routeCache_.find(key);
    if (it != routeCache_.end())
        return it->second;

    Topology::LinkFilter filter;
    if (!cmode) {
        filter = [](const TopoLink &link) {
            return link.kind == LinkKind::HTree ||
                   link.kind == LinkKind::Bus;
        };
    }
    const int from = banks_[bank_a].tiles[tile_a];
    const int to = banks_[bank_b].tiles[tile_b];
    Route route = topo_.route(from, to, filter);
    LERGAN_ASSERT(route.valid(), "no route from bank ", bank_a, " tile ",
                  tile_a, " to bank ", bank_b, " tile ", tile_b);
    return routeCache_.emplace(key, std::move(route)).first->second;
}

AreaModel
Machine::area() const
{
    AreaModel area = areaModel3dcu(config_.reram);
    if (config_.connection == Connection::HTree) {
        area.addedWireArea = 0;
        area.switchArea = 0;
    }
    // Two CUs.
    area.tileArea *= 2;
    area.htreeWireArea *= 2;
    area.addedWireArea *= 2;
    area.switchArea *= 2;
    return area;
}

} // namespace lergan
