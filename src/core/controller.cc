#include "core/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lergan {

const char *
ctrlStateName(CtrlState state)
{
    switch (state) {
      case CtrlState::Idle:       return "idle";
      case CtrlState::TrainDisc:  return "train_disc";
      case CtrlState::UpdateDisc: return "update_disc";
      case CtrlState::TrainGen:   return "train_gen";
      case CtrlState::UpdateGen:  return "update_gen";
    }
    return "?";
}

const char *
ctrlStateMetricKey(CtrlState state)
{
    // ctrlStateName already uses lowercase snake_case keys.
    return ctrlStateName(state);
}

MemoryController::MemoryController(const ReRamParams &params, int cu_pairs)
    : params_(params)
{
    LERGAN_ASSERT(cu_pairs >= 1, "need at least one CU pair");
    modes_.assign(static_cast<std::size_t>(kNumBanks) * cu_pairs,
                  BankMode::Smode);
}

BankMode
MemoryController::mode(int bank) const
{
    LERGAN_ASSERT(bank >= 0 && bank < numBanks(), "bad bank id ", bank);
    return modes_[bank];
}

std::vector<ModeSwitch>
MemoryController::applyModes(const std::array<BankMode, 6> &target)
{
    // Every CU pair plays the same role pattern (Fig. 13 per pair).
    std::vector<ModeSwitch> switches;
    for (int bank = 0; bank < numBanks(); ++bank) {
        const BankMode wanted = target[bank % kNumBanks];
        if (modes_[bank] != wanted) {
            modes_[bank] = wanted;
            switches.push_back(ModeSwitch{bank, wanted});
            ++switchCount_;
        }
    }
    return switches;
}

std::vector<ModeSwitch>
MemoryController::advance()
{
    const BankMode S = BankMode::Smode;
    const BankMode C = BankMode::Cmode;
    switch (state_) {
      case CtrlState::Idle:
      case CtrlState::UpdateGen:
        // Fig. 13a: B2/B3 idle as plain memory while the discriminator
        // trains; B1 (G->) and B4..B6 compute.
        state_ = CtrlState::TrainDisc;
        return applyModes({C, S, S, C, C, C});
      case CtrlState::TrainDisc:
        // Read Dw results and rewrite B4's kernels through Smode.
        state_ = CtrlState::UpdateDisc;
        return applyModes({C, S, S, S, S, S});
      case CtrlState::UpdateDisc:
        // Fig. 13b: everything computes while training the generator
        // (B1 is already in Cmode from the previous step).
        state_ = CtrlState::TrainGen;
        return applyModes({C, C, C, C, C, C});
      case CtrlState::TrainGen:
        state_ = CtrlState::UpdateGen;
        return applyModes({S, S, S, C, C, C});
    }
    LERGAN_PANIC("unreachable controller state");
}

void
MemoryController::reset()
{
    state_ = CtrlState::Idle;
    std::fill(modes_.begin(), modes_.end(), BankMode::Smode);
    switchCount_ = 0;
}

PicoSeconds
MemoryController::switchTime() const
{
    // Flipping a bank's mode reconfigures the switches of its 31 routing
    // nodes; the controller drives them in parallel rows (4 steps).
    return nsToPs(params_.switchReconfigNs * 4);
}

PicoJoules
MemoryController::switchEnergy() const
{
    return params_.switchReconfigPj * 31;
}

} // namespace lergan
