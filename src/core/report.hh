/**
 * @file
 * Simulation result records.
 */

#ifndef LERGAN_CORE_REPORT_HH
#define LERGAN_CORE_REPORT_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace lergan {

struct RecordedRun; // critpath/critpath.hh

/** Result of simulating training iterations on one configuration. */
struct TrainingReport {
    /** Benchmark name. */
    std::string benchmark;
    /** Configuration label (AcceleratorConfig::label()). */
    std::string config;
    /** Wall-clock time of one training iteration (train D + train G). */
    PicoSeconds iterationTime = 0;
    /** Energy and counter statistics for one iteration. */
    StatSet stats;
    /** CArray crossbars occupied by the mapping. */
    std::uint64_t crossbarsUsed = 0;
    /** Modeled compile time (ms), with and without ZFDR work. */
    double compileMs = 0.0;
    double compileMsTraditional = 0.0;
    /**
     * Dependence record and critical path of the simulated iteration —
     * null unless the run asked for it (withCriticalPath). Shared so
     * copies of the report stay cheap; the record is immutable once
     * attached. print()/writeJson() surface it only when present, so
     * default reports stay byte-identical.
     */
    std::shared_ptr<const RecordedRun> critpath;

    /** Total energy of one iteration, picojoules. */
    double
    totalEnergyPj() const
    {
        return stats.sumPrefix("energy.");
    }

    /** Compute (crossbar MMV) energy share. */
    double
    computeEnergyPj() const
    {
        return stats.sumPrefix("energy.compute.");
    }

    /** Communication (wire/bus) energy share. */
    double
    commEnergyPj() const
    {
        return stats.sumPrefix("energy.comm.");
    }

    /** Iteration time in milliseconds. */
    double timeMs() const { return psToMs(iterationTime); }

    /** Print a one-line summary plus the statistic dump. */
    void print(std::ostream &os, bool verbose = false) const;

    /** Write the full report as a JSON object. */
    void writeJson(std::ostream &os) const;
};

} // namespace lergan

#endif // LERGAN_CORE_REPORT_HH
