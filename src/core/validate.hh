/**
 * @file
 * Compiled-mapping validator.
 *
 * Checks the structural invariants a CompiledGan must satisfy before it
 * is worth simulating: bank roles, allocation consistency, capacity
 * accounting, coverage of all six phases, and per-op cost sanity. The
 * accelerator runs it on construction in debug spirit; tests and user
 * tooling can call it directly for actionable diagnostics.
 */

#ifndef LERGAN_CORE_VALIDATE_HH
#define LERGAN_CORE_VALIDATE_HH

#include <string>
#include <vector>

#include "core/compiler.hh"

namespace lergan {

/** Outcome of validating one compiled mapping. */
struct ValidationResult {
    /** Human-readable violations (empty = valid). */
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

/**
 * Validate @p compiled against @p model and @p config.
 *
 * Checked invariants:
 *  - all six phases present, each op in its phase's role bank
 *    (modulo the CU-pair offset) and within the machine's banks;
 *  - every allocation's reserved + oversubscribed crossbars equal the
 *    op's cost, ranges stay within tile bounds and avoid failed tiles;
 *  - bank usage never exceeds per-tile capacity;
 *  - per-op costs are non-degenerate (waves and traffic positive);
 *  - update volumes match the kernel-holding phases.
 */
ValidationResult validateMapping(const GanModel &model,
                                 const AcceleratorConfig &config,
                                 const CompiledGan &compiled);

/**
 * validateMapping(), but violations throw std::runtime_error with every
 * diagnostic joined into the message.
 */
void throwIfInvalid(const GanModel &model, const AcceleratorConfig &config,
                    const CompiledGan &compiled);

/**
 * compileGan() followed by throwIfInvalid(): the compile step the
 * session and sweep inject into the CompiledModelCache, so *every*
 * compile inside the execution engine is validated at the point it
 * enters the cache — not just when an accelerator is constructed.
 */
CompiledGan compileGanValidated(const GanModel &model,
                                const AcceleratorConfig &config);

} // namespace lergan

#endif // LERGAN_CORE_VALIDATE_HH
