/**
 * @file
 * Experiment sweeps: run a grid of (benchmark x configuration) points
 * and export the results for plotting.
 *
 * The figure benches print human-readable tables; this library is the
 * programmatic counterpart — downstream users compose their own
 * comparisons and get JSON/CSV out (core/sweep_io.hh).
 *
 * Points execute on a worker pool (RunOptions::threads) with the
 * compiled mapping of every (model, config) pair cached across run()
 * calls. Results are always ordered benchmark-major regardless of which
 * worker finishes first, and a point that throws is reported as a
 * failed SweepResult instead of aborting the grid, so a 1-thread and an
 * N-thread run of the same grid export byte-identical JSON/CSV.
 */

#ifndef LERGAN_CORE_SWEEP_HH
#define LERGAN_CORE_SWEEP_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "audit/audit.hh"
#include "core/accelerator.hh"
#include "exec/engine.hh"
#include "exec/model_cache.hh"
#include "faults/fault_stats.hh"

namespace lergan {

/** Host-side observations of one executed point (never goldened). */
struct PointTelemetry {
    /** False unless the sweep ran with RunOptions::pointTelemetry. */
    bool ran = false;
    /** Whether this point's compile was served from the cache. */
    bool cacheHit = false;
    /** Wall-clock time of the point body on its worker. */
    double hostMs = 0.0;
    /** False unless the sweep ran with a tracing recorder attached. */
    bool traced = false;
    /** Spans this point recorded into the flight recorder. */
    std::uint64_t spanCount = 0;
    /** Milliseconds the point waited before a lane claimed it. */
    double queueWaitMs = -1.0;
};

/** One executed experiment point. */
struct SweepResult {
    std::string benchmark;
    std::string configLabel;
    TrainingReport report;
    std::uint64_t crossbarsUsed = 0;
    std::uint64_t oversubscribed = 0;
    /** True when this point threw instead of producing a report. */
    bool failed = false;
    /** Exception message of a failed point. */
    std::string error;
    /**
     * Cross-layer invariant verdict of this point (audit.ran is false
     * unless the sweep was configured with auditWith). A failed audit
     * does not fail the point — it is surfaced here and in the JSON
     * export; an audit failure is a simulator bug, not a user error.
     */
    AuditVerdict audit;
    /**
     * Monte Carlo trial distributions (faults.ran() is false unless the
     * point came out of a FaultMonteCarlo run, faults/montecarlo.hh).
     */
    FaultSweepStats faults;
    /** Host-side point observations (RunOptions::pointTelemetry). */
    PointTelemetry telemetry;
    /**
     * Causal history of a failed point: the span tree the point left
     * in the flight recorder, rendered as text (empty unless the
     * sweep ran with withTracing and this point failed).
     */
    std::string traceDump;
};

/** A grid of benchmarks x configurations (plus explicit extra points). */
class ExperimentSweep
{
  public:
    ExperimentSweep();

    /** Add a benchmark model to the grid. */
    ExperimentSweep &addBenchmark(const GanModel &model);

    /** Add a configuration (with a display label) to the grid. */
    ExperimentSweep &addConfig(const std::string &label,
                               const AcceleratorConfig &config);

    /**
     * Add one explicit (model, config) point outside the grid — for
     * per-benchmark configurations like the normalized-space variants,
     * whose crossbar budget depends on the model. Explicit points run
     * after the grid, in insertion order.
     */
    ExperimentSweep &addPoint(const GanModel &model,
                              const std::string &label,
                              const AcceleratorConfig &config);

    /**
     * Audit every point of every subsequent run() under @p options:
     * each point simulates traced and its SweepResult::audit carries
     * the verdict. Adds one traced re-execution's worth of bookkeeping
     * but no extra simulation — the audited run is the measured run.
     */
    ExperimentSweep &auditWith(AuditOptions options);

    /**
     * Attach a metrics registry: every point of every subsequent run()
     * accumulates sim-time telemetry into it (same contract as
     * SimulationSession::withTelemetry — integer instruments only, so
     * totals are independent of worker count), plus compile-cache
     * gauges and the worker pool's "host."-prefixed stats after each
     * run. Pass null to detach.
     */
    ExperimentSweep &withTelemetry(
        std::shared_ptr<MetricsRegistry> registry =
            std::make_shared<MetricsRegistry>());

    /** The attached metrics registry (null when telemetry is off). */
    const std::shared_ptr<MetricsRegistry> &telemetry() const
    {
        return telemetry_;
    }

    /**
     * Attach a flight recorder: every point of every subsequent run()
     * executes under a root "point" span (trace id = point index + 1)
     * with compile/template/simulate/audit stage children recorded
     * into per-lane lock-free rings (telemetry/flight_recorder.hh).
     * The recorder keeps the newest laneCapacity() spans per lane;
     * read it after run() with collect()/collectTrace(), export with
     * writeSpanNdjson(), or summarize with writeAnomalyReport().
     * Pass null to detach.
     */
    ExperimentSweep &withTracing(
        std::shared_ptr<FlightRecorder> recorder =
            std::make_shared<FlightRecorder>());

    /** The attached flight recorder (null when tracing is off). */
    const std::shared_ptr<FlightRecorder> &recorder() const
    {
        return recorder_;
    }

    /**
     * Record every point's dependence graph: each successful
     * SweepResult's report.critpath carries the execution record, the
     * extracted critical path and the inputs of the what-if estimator
     * (critpath/whatif.hh). Recording never changes simulated results.
     */
    ExperimentSweep &withCriticalPath(bool enabled = true);

    /**
     * Bound-based pruning of comparison sweeps: the first addConfig'd
     * configuration is the per-benchmark baseline and always simulates
     * fully; every other grid point first computes analytic makespan
     * bounds (critpath/whatif.hh makespanBounds) and skips the event
     * simulation when the bracket already decides which side of the
     * baseline it lands on. Pruned points report the bound's
     * list-schedule estimate as their time (stats carry
     * "critpath.estimated" = 1; energies stay exact — they are
     * build-time facts), skip auditing and recording, and count into
     * the attached telemetry's "critpath.pruned" counter; fully
     * simulated points count into "critpath.simulated". Explicit
     * addPoint() points are never pruned. Off by default — the golden
     * figure grids always simulate every point exactly.
     */
    ExperimentSweep &withBoundPruning(bool enabled = true);

    /** @name Legacy overloaded builders (forward to the named ones) */
    ///@{
    ExperimentSweep &
    add(const GanModel &model)
    {
        return addBenchmark(model);
    }
    ExperimentSweep &
    add(const std::string &label, const AcceleratorConfig &config)
    {
        return addConfig(label, config);
    }
    ///@}

    /**
     * Simulate every point under @p options; results are ordered
     * benchmark-major (then explicit points in insertion order)
     * regardless of completion order. A throwing point yields a failed
     * SweepResult; the other points are unaffected.
     */
    std::vector<SweepResult> run(const RunOptions &options) const;

    /** Sequential convenience: run(RunOptions{1, iterations}). */
    std::vector<SweepResult> run(int iterations = 1) const;

    /** Total experiment points the next run() will execute. */
    std::size_t pointCount() const;

    /**
     * The compiled-model cache shared by every run() of this sweep
     * (exact hit/miss counters; a repeated run recompiles nothing).
     */
    CompiledModelCache &cache() const { return *cache_; }

    /**
     * The per-iteration DAG template cache shared by every run() of
     * this sweep, keyed by pairFingerprint like the compiled-model
     * cache: each (model, config) pair lowers its training iteration
     * to a task graph once, and every run of the pair replays it.
     */
    MemoCache<IterationTemplate> &templates() const { return *templates_; }

    /** @name Legacy exporters (forward to core/sweep_io.hh) */
    ///@{
    static void writeJson(std::ostream &os,
                          const std::vector<SweepResult> &results);
    static void writeCsv(std::ostream &os,
                         const std::vector<SweepResult> &results);
    ///@}

  private:
    struct ExplicitPoint {
        GanModel model;
        std::string label;
        AcceleratorConfig config;
    };

    std::vector<GanModel> models_;
    std::vector<std::pair<std::string, AcceleratorConfig>> configs_;
    std::vector<ExplicitPoint> extraPoints_;
    std::shared_ptr<CompiledModelCache> cache_;
    std::shared_ptr<MemoCache<IterationTemplate>> templates_;
    AuditOptions audit_;
    std::shared_ptr<MetricsRegistry> telemetry_;
    std::shared_ptr<FlightRecorder> recorder_;
    bool critpath_ = false;
    bool pruning_ = false;
};

} // namespace lergan

#endif // LERGAN_CORE_SWEEP_HH
