/**
 * @file
 * Experiment sweeps: run a grid of (benchmark x configuration) points
 * and export the results for plotting.
 *
 * The figure benches print human-readable tables; this library is the
 * programmatic counterpart — downstream users compose their own
 * comparisons and get JSON/CSV out.
 */

#ifndef LERGAN_CORE_SWEEP_HH
#define LERGAN_CORE_SWEEP_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/accelerator.hh"

namespace lergan {

/** One executed experiment point. */
struct SweepResult {
    std::string benchmark;
    std::string configLabel;
    TrainingReport report;
    std::uint64_t crossbarsUsed = 0;
    std::uint64_t oversubscribed = 0;
};

/** A grid of benchmarks x configurations. */
class ExperimentSweep
{
  public:
    /** Add a benchmark model to the grid. */
    ExperimentSweep &add(const GanModel &model);

    /** Add a configuration (with a display label) to the grid. */
    ExperimentSweep &add(const std::string &label,
                         const AcceleratorConfig &config);

    /** Simulate every point; results are ordered benchmark-major. */
    std::vector<SweepResult> run(int iterations = 1) const;

    /** Write results as a JSON array of objects. */
    static void writeJson(std::ostream &os,
                          const std::vector<SweepResult> &results);

    /** Write results as CSV (one row per point, stats flattened). */
    static void writeCsv(std::ostream &os,
                         const std::vector<SweepResult> &results);

  private:
    std::vector<GanModel> models_;
    std::vector<std::pair<std::string, AcceleratorConfig>> configs_;
};

} // namespace lergan

#endif // LERGAN_CORE_SWEEP_HH
