#include "core/compiler.hh"

#include <algorithm>
#include <array>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "faults/fault_model.hh"
#include "faults/wear.hh"
#include "telemetry/profiler.hh"

namespace lergan {

namespace {

/**
 * The concrete tile damage one compile must place around: tiles to
 * retire entirely and per-tile crossbar capacity reductions. A plain
 * compile uses the manual failedTiles list and nothing else; a
 * fault-injected compile derives the plan from a materialized FaultMap.
 */
struct FaultPlan {
    std::vector<std::pair<int, int>> killed;
    /** deadXbars[bank][tile] on surviving tiles (empty = none). */
    std::vector<std::vector<std::uint64_t>> deadXbars;
};

/**
 * Weight elements the ZFDR mapping of the layer behind @p op would
 * occupy — Eq. 14's s_zf. For a dense op, the companion sparse op of the
 * same layer (forward for T-CONV layers, error backprop for S-CONV
 * layers) defines how much CArray space the layer's ZFDR copies use.
 */
std::uint64_t
companionZfdrElems(const GanModel &model, const LayerOp &op,
                   ReplicaDegree degree, const ReplicaCostParams &params)
{
    const LayerSpec &layer = model.net(op.role)[op.layerIdx];
    Phase companion_phase;
    if (layer.kind == LayerKind::TConv)
        companion_phase = op.role == NetRole::Generator ? Phase::GFwd
                                                        : Phase::DFwd;
    else if (layer.kind == LayerKind::Conv)
        companion_phase = op.role == NetRole::Generator ? Phase::GBwdErr
                                                        : Phase::DBwdErr;
    else
        return layer.numWeights();

    for (const LayerOp &cand : opsForPhase(model, companion_phase)) {
        if (cand.role == op.role && cand.layerIdx == op.layerIdx &&
            cand.zfdrApplicable()) {
            const ReshapeAnalysis analysis = analyzeReshape(cand);
            const ReplicaVector reps =
                chooseReplicas(cand, analysis, degree, params);
            return analysis.corner.weightElems * reps.corner +
                   analysis.edge.weightElems * reps.edge +
                   analysis.inside.weightElems * reps.inside;
        }
    }
    return layer.numWeights();
}

/**
 * Naive intra-layer duplication for fully-normal configurations (the
 * PRIME/PipeLayer baseline): replicate the dense kernel until one item's
 * MMV waves hit a pipeline-friendly target; weight-gradient ops instead
 * balance the duplicated per-item crossbar writes against the waves
 * saved, exactly like the ZFDR replica chooser.
 */
std::uint64_t
naiveDup(const LayerOp &op, const CrossbarGeom &geom,
         const ReplicaCostParams &params)
{
    std::uint64_t positions = 1;
    switch (op.pattern) {
      case OpPattern::DenseFc:
      case OpPattern::OuterProductFc:
        return 1;
      default:
        positions = ipow(op.positions, op.spatialDims);
        break;
    }
    const std::uint64_t issues =
        positions * static_cast<std::uint64_t>(op.vectorsPerPosition);

    const bool per_item_write = op.phase == Phase::DBwdWeight ||
                                op.phase == Phase::GBwdWeight;
    if (per_item_write) {
        const std::uint64_t base_elems =
            std::max<std::uint64_t>(1, normalOpCost(op, 1, geom)
                                           .weightElems);
        std::uint64_t best_r = 1;
        double best_t = -1.0;
        for (std::uint64_t r = 1; r <= issues; r *= 2) {
            const double t =
                params.writeNsPerElem *
                    static_cast<double>(base_elems * r) +
                params.mmvTimeNs *
                    static_cast<double>((issues + r - 1) / r);
            if (best_t < 0 || t < best_t) {
                best_t = t;
                best_r = r;
            }
        }
        return best_r;
    }

    constexpr std::uint64_t wave_target = 256;
    constexpr std::uint64_t max_dup = 64;
    return std::clamp<std::uint64_t>(
        (issues + wave_target - 1) / wave_target, 1, max_dup);
}

/** Scale a replica vector down by @p factor (never below one copy). */
ReplicaVector
scaleReplicas(const ReplicaVector &reps, double factor)
{
    auto scale = [factor](std::uint64_t r) {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(static_cast<double>(r) * factor));
    };
    ReplicaVector scaled;
    scaled.corner = scale(reps.corner);
    scaled.edge = scale(reps.edge);
    scaled.inside = scale(reps.inside);
    return scaled;
}

/** Cost one op under the configuration, given its replica choice. */
OpCost
costOp(const MappedOp &mapped, const CrossbarGeom &geom)
{
    if (mapped.usesZfdr) {
        const ReshapeAnalysis analysis = analyzeReshape(mapped.op);
        return zfdrOpCost(mapped.op, analysis, mapped.replicas, geom);
    }
    return normalOpCost(mapped.op, mapped.denseRep, geom);
}

/** Modeled compile time (Sec. VI-E). */
void
modelCompileTime(const GanModel &model, CompiledGan &compiled)
{
    // Traditional flow: parse + per-weight mapping.
    const double weights = static_cast<double>(model.totalWeights());
    compiled.compileMsTraditional = 20.0e3 + weights * 5.0e-4;

    // ZFDR/ZFDM adds placeholder creation per reshaped matrix and
    // per-replica mapping work.
    double extra_ms = 0.0;
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &mapped : phase.ops) {
            if (!mapped.usesZfdr)
                continue;
            const ReshapeAnalysis analysis = analyzeReshape(mapped.op);
            extra_ms += 10.0 * static_cast<double>(
                                   analysis.distinctMatrices());
            extra_ms += static_cast<double>(mapped.cost.weightElems) *
                        3.0e-5;
        }
    }
    compiled.compileMs = compiled.compileMsTraditional + extra_ms;
}

} // namespace

const CompiledPhase &
CompiledGan::phase(Phase phase) const
{
    for (const CompiledPhase &p : phases)
        if (p.phase == phase)
            return p;
    LERGAN_PANIC("phase not compiled");
}

void
CompiledGan::printMemoryMap(std::ostream &os) const
{
    for (std::size_t bank = 0; bank < bankUsage.size(); ++bank) {
        std::uint64_t total = 0;
        os << "bank " << bank << " [";
        for (std::uint64_t used : bankUsage[bank]) {
            total += used;
            os << (used == 0 ? '.' : used < 2048 ? '-'
                                     : used < 6144 ? '+'
                                                   : '#');
        }
        os << "] " << total << " xbars\n";
    }
    if (oversubscribedCrossbars > 0) {
        os << "oversubscribed: " << oversubscribedCrossbars
           << " crossbars (time-shared)\n";
    }
}

int
bankForPhase(Phase phase)
{
    // Fig. 13: generator CU holds {B1=G.fwd, B2=G.bwd_w, B3=G.bwd_err};
    // discriminator CU holds {B4=D.fwd, B5=D.bwd_w, B6=D.bwd_err}.
    switch (phase) {
      case Phase::GFwd:       return 0;
      case Phase::GBwdWeight: return 1;
      case Phase::GBwdErr:    return 2;
      case Phase::DFwd:       return 3;
      case Phase::DBwdWeight: return 4;
      case Phase::DBwdErr:    return 5;
    }
    return 0;
}

namespace {

/** The placement pipeline, parameterized by the fault plan. */
CompiledGan
compileGanImpl(const GanModel &model, const AcceleratorConfig &config,
               const FaultPlan &plan)
{
    const CrossbarGeom geom;
    ReplicaCostParams replica_params;
    replica_params.mmvTimeNs = config.reram.mmvWaveNs;
    replica_params.hopTimeNs = config.reram.tileReadNs;
    replica_params.carrayElemsPerTile = config.reram.carrayWeightsPerTile();
    replica_params.writeNsPerElem = config.reram.weightWriteNsPerElem;

    CompiledGan compiled;
    for (Phase phase : kAllPhases) {
        CompiledPhase cphase;
        cphase.phase = phase;
        for (const LayerOp &op : opsForPhase(model, phase)) {
            MappedOp mapped;
            mapped.op = op;
            mapped.bank = bankForPhase(phase); // pair assigned at placement
            mapped.usesZfdr = config.reshape == ReshapeMode::Zfdr &&
                              op.zfdrApplicable();
            mapped.perItemWrite = (phase == Phase::DBwdWeight ||
                                   phase == Phase::GBwdWeight) &&
                                  op.pattern != OpPattern::DenseFc;

            if (mapped.usesZfdr) {
                const ReshapeAnalysis analysis = analyzeReshape(op);
                mapped.replicas =
                    config.duplicate
                        ? chooseReplicas(op, analysis,
                                         config.degreeFor(phase),
                                         replica_params)
                        : ReplicaVector{};
            } else if (config.duplicate) {
                if (config.reshape == ReshapeMode::Normal) {
                    // Fully-normal baseline: PipeLayer-style duplication.
                    mapped.denseRep =
                        naiveDup(op, geom, replica_params);
                } else {
                    // Dense op inside a ZFDR configuration: Eq. 14.
                    const std::uint64_t s_n =
                        model.net(op.role)[op.layerIdx].numWeights();
                    const std::uint64_t s_zf = companionZfdrElems(
                        model, op, config.degreeFor(phase),
                        replica_params);
                    mapped.denseRep =
                        denseReplicas(config.degreeFor(phase), s_zf, s_n);
                }
            }
            mapped.cost = costOp(mapped, geom);
            cphase.ops.push_back(std::move(mapped));
        }
        compiled.phases.push_back(std::move(cphase));
    }

    auto tally = [&] {
        compiled.crossbarsUsed = 0;
        compiled.weightElems = 0;
        for (const CompiledPhase &phase : compiled.phases) {
            for (const MappedOp &mapped : phase.ops) {
                compiled.crossbarsUsed += mapped.cost.crossbarsUsed;
                compiled.weightElems += mapped.cost.weightElems;
            }
        }
    };
    tally();

    // Fit the mapping to its crossbar budget: the machine's physical
    // capacity always applies (duplication shrinks before a bank is
    // oversubscribed 10x); an explicit normalized-space budget tightens
    // it further. Growing into a surplus only happens for explicit NS.
    const std::uint64_t machine_xbars =
        static_cast<std::uint64_t>(6) * config.cuPairs *
        config.reram.tilesPerBank * config.reram.crossbarsPerTile();
    std::uint64_t budget = machine_xbars;
    if (config.normalizedSpace && config.spaceBudgetCrossbars > 0)
        budget = std::min(budget, config.spaceBudgetCrossbars);
    // No single op may outgrow the bank that hosts it: scale its own
    // duplication first (the base, single-copy mapping may still
    // oversubscribe, which the allocator then reports as time-sharing).
    const std::uint64_t bank_xbars =
        static_cast<std::uint64_t>(config.reram.tilesPerBank) *
        config.reram.crossbarsPerTile();
    for (CompiledPhase &phase : compiled.phases) {
        for (MappedOp &mapped : phase.ops) {
            for (int round = 0;
                 round < 16 && mapped.cost.crossbarsUsed > bank_xbars;
                 ++round) {
                const double factor =
                    0.9 * static_cast<double>(bank_xbars) /
                    static_cast<double>(mapped.cost.crossbarsUsed);
                if (mapped.usesZfdr) {
                    const ReplicaVector scaled =
                        scaleReplicas(mapped.replicas, factor);
                    if (scaled.corner == mapped.replicas.corner &&
                        scaled.edge == mapped.replicas.edge &&
                        scaled.inside == mapped.replicas.inside) {
                        break; // already at single copies
                    }
                    mapped.replicas = scaled;
                } else {
                    const auto scaled = std::max<std::uint64_t>(
                        1, static_cast<std::uint64_t>(
                               static_cast<double>(mapped.denseRep) *
                               factor));
                    if (scaled == mapped.denseRep)
                        break;
                    mapped.denseRep = scaled;
                }
                mapped.cost = costOp(mapped, geom);
            }
        }
    }
    tally();
    {
        for (int round = 0;
             round < 32 && compiled.crossbarsUsed > budget;
             ++round) {
            const double factor =
                0.9 * static_cast<double>(budget) /
                static_cast<double>(compiled.crossbarsUsed);
            bool changed = false;
            for (CompiledPhase &phase : compiled.phases) {
                for (MappedOp &mapped : phase.ops) {
                    if (mapped.usesZfdr) {
                        const ReplicaVector scaled =
                            scaleReplicas(mapped.replicas, factor);
                        changed = changed ||
                                  scaled.edge != mapped.replicas.edge ||
                                  scaled.inside != mapped.replicas.inside;
                        mapped.replicas = scaled;
                    } else if (mapped.denseRep > 1) {
                        const auto scaled = std::max<std::uint64_t>(
                            1, static_cast<std::uint64_t>(
                                   static_cast<double>(mapped.denseRep) *
                                   factor));
                        changed = changed || scaled != mapped.denseRep;
                        mapped.denseRep = scaled;
                    }
                    mapped.cost = costOp(mapped, geom);
                }
            }
            tally();
            if (!changed)
                break;
        }
        if (config.normalizedSpace && config.spaceBudgetCrossbars > 0 &&
            compiled.crossbarsUsed < budget) {
            // Spend a surplus budget on uniform duplication (this is how
            // PRIME-NS consumes LerGAN's CArray space in Fig. 16/19).
            const std::uint64_t boost =
                budget /
                std::max<std::uint64_t>(1, compiled.crossbarsUsed);
            if (boost > 1) {
                for (CompiledPhase &phase : compiled.phases) {
                    for (MappedOp &mapped : phase.ops) {
                        if (mapped.usesZfdr) {
                            mapped.replicas.edge *= boost;
                            mapped.replicas.inside *= boost;
                        } else {
                            mapped.denseRep *= boost;
                        }
                        mapped.cost = costOp(mapped, geom);
                    }
                }
                tally();
            }
        }
    }

    // Tile placement: reserve actual crossbars through the allocator.
    // Ops spread over tiles in small chunks for wire bandwidth and MMV
    // parallelism well before capacity forces them to (a tile holds
    // thousands of crossbars); when a bank overflows, the remainder
    // time-shares crossbars and the shared tiles serialize in the
    // simulator, modeling limited space.
    CArrayAllocator allocator(6 * config.cuPairs,
                              config.reram.tilesPerBank,
                              config.reram.crossbarsPerTile());
    for (const auto &[bank, tile] : plan.killed)
        allocator.markFailed(bank, tile);
    for (std::size_t bank = 0; bank < plan.deadXbars.size(); ++bank) {
        for (std::size_t tile = 0; tile < plan.deadXbars[bank].size();
             ++tile) {
            if (plan.deadXbars[bank][tile] > 0 &&
                !allocator.isFailed(static_cast<int>(bank),
                                    static_cast<int>(tile))) {
                allocator.reduceCapacity(static_cast<int>(bank),
                                         static_cast<int>(tile),
                                         plan.deadXbars[bank][tile]);
            }
        }
    }

    // Contiguous layer blocks per CU pair, balanced by crossbar demand
    // (volumetric GANs concentrate their crossbars in a few layers, so a
    // plain layer-count split would overflow one pair and idle another).
    std::map<std::pair<int, std::size_t>, std::uint64_t> layer_xbars;
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &mapped : phase.ops) {
            layer_xbars[{static_cast<int>(mapped.op.role),
                         mapped.op.layerIdx}] +=
                mapped.cost.crossbarsUsed;
        }
    }
    std::map<std::pair<int, std::size_t>, int> pair_of;
    for (const NetRole role : {NetRole::Generator,
                               NetRole::Discriminator}) {
        const std::size_t layers = model.net(role).size();
        std::uint64_t total = 0;
        for (std::size_t l = 0; l < layers; ++l)
            total += layer_xbars[{static_cast<int>(role), l}];
        std::uint64_t prefix = 0;
        for (std::size_t l = 0; l < layers; ++l) {
            const int pair = std::min<int>(
                config.cuPairs - 1,
                static_cast<int>(prefix * config.cuPairs /
                                 std::max<std::uint64_t>(1, total)));
            pair_of[{static_cast<int>(role), l}] = pair;
            prefix += layer_xbars[{static_cast<int>(role), l}];
        }
    }

    for (CompiledPhase &phase : compiled.phases) {
        for (MappedOp &mapped : phase.ops) {
            mapped.bank =
                6 * pair_of[{static_cast<int>(mapped.op.role),
                             mapped.op.layerIdx}] +
                bankForPhase(phase.phase);
            const std::uint64_t xbars =
                std::max<std::uint64_t>(1, mapped.cost.crossbarsUsed);
            const std::uint64_t chunk = std::max<std::uint64_t>(
                8, (xbars + config.reram.tilesPerBank - 1) /
                       config.reram.tilesPerBank);
            mapped.allocation = allocator.allocate(mapped.bank, xbars,
                                                   chunk, mapped.op.label);
            const std::vector<int> tiles = mapped.allocation.tiles();
            LERGAN_ASSERT(!tiles.empty(), "placement produced no tiles");
            mapped.tileStart = tiles.front();
            mapped.tileCount = static_cast<int>(tiles.size());
        }
    }
    compiled.bankUsage.assign(6 * config.cuPairs, {});
    for (int bank = 0; bank < 6 * config.cuPairs; ++bank) {
        for (int tile = 0; tile < config.reram.tilesPerBank; ++tile)
            compiled.bankUsage[bank].push_back(
                allocator.usedInTile(bank, tile));
    }
    compiled.oversubscribedCrossbars = allocator.totalOversubscribed();

    // Update volumes: every stored copy of kernel weights is rewritten
    // when its network updates. W-CONV ops hold per-item gradients, not
    // kernels, so they are excluded here (their writes are per item).
    for (const CompiledPhase &phase : compiled.phases) {
        const bool is_weight_phase = phase.phase == Phase::DBwdWeight ||
                                     phase.phase == Phase::GBwdWeight;
        for (const MappedOp &mapped : phase.ops) {
            if (is_weight_phase)
                continue;
            const bool gen_weights =
                phase.phase == Phase::GFwd || phase.phase == Phase::GBwdErr;
            if (gen_weights)
                compiled.updateElemsG += mapped.cost.weightElems;
            else
                compiled.updateElemsD += mapped.cost.weightElems;
        }
    }

    modelCompileTime(model, compiled);
    return compiled;
}

} // namespace

WearInputs
compiledWriteDensities(const CompiledGan &compiled,
                       const AcceleratorConfig &config)
{
    WearInputs inputs;
    inputs.cellsPerTile = config.reram.carrayWeightsPerTile();
    inputs.writesPerIteration.assign(
        static_cast<std::size_t>(6) * config.cuPairs,
        std::vector<double>(config.reram.tilesPerBank, 0.0));
    for (const CompiledPhase &phase : compiled.phases) {
        for (const MappedOp &mapped : phase.ops) {
            const double writes =
                static_cast<double>(mapped.cost.weightElems) *
                (mapped.perItemWrite
                     ? static_cast<double>(config.batchSize)
                     : 1.0);
            const std::uint64_t reserved = mapped.allocation.reserved();
            if (writes <= 0.0 || reserved == 0)
                continue;
            for (const CrossbarRange &range : mapped.allocation.ranges) {
                if (range.count == 0)
                    continue;
                inputs.writesPerIteration[range.bank][range.tile] +=
                    writes * static_cast<double>(range.count) /
                    static_cast<double>(reserved);
            }
        }
    }
    return inputs;
}

CompiledGan
compileGan(const GanModel &model, const AcceleratorConfig &config)
{
    const auto scope = HostProfiler::global().scope("compile");
    if (!config.faults.any()) {
        // Zero-fault path: bit-exact with the fault-unaware compiler.
        // Manual failedTiles keep their legacy route-around behavior.
        FaultPlan plan;
        plan.killed = config.failedTiles;
        return compileGanImpl(model, config, plan);
    }

    config.faults.checkUsable();

    // The healthy placement of the same pair anchors the degradation
    // accounting (remap traffic) and the wear model's write densities.
    AcceleratorConfig healthy_config = config;
    healthy_config.faults = FaultConfig{};
    healthy_config.failedTiles.clear();
    const CompiledGan healthy =
        compileGanImpl(model, healthy_config, FaultPlan{});

    const FaultGeometry geometry =
        faultGeometry(config.cuPairs, config.reram);
    FaultMap map = buildFaultMap(geometry, config.faults);
    if (config.faults.priorIterations > 0.0) {
        applyWear(map,
                  computeWearMap(compiledWriteDensities(healthy, config),
                                      config.faults.priorIterations,
                                      config.faults.cellEndurance));
    }
    for (const auto &[bank, tile] : config.failedTiles) {
        LERGAN_ASSERT(bank >= 0 && bank < geometry.banks && tile >= 0 &&
                          tile < geometry.tilesPerBank,
                      "failedTiles entry out of range");
        map.tiles[bank][tile].killed = true;
    }

    // Graceful failure, not a crash: a bank with no live tiles cannot
    // host its phase at all, so the point fails as a user-visible error
    // (sweeps record it as a failed SweepResult and move on).
    for (int bank = 0; bank < geometry.banks; ++bank) {
        if (map.killedInBank(bank) == geometry.tilesPerBank) {
            std::ostringstream oss;
            oss << "fault map kills every tile of bank " << bank
                << " (seed " << config.faults.seed
                << "): the mapping cannot degrade gracefully";
            throw std::invalid_argument(oss.str());
        }
    }

    FaultPlan plan;
    plan.killed = map.killedTiles();
    plan.deadXbars.assign(
        geometry.banks,
        std::vector<std::uint64_t>(geometry.tilesPerBank, 0));
    for (int bank = 0; bank < geometry.banks; ++bank) {
        for (int tile = 0; tile < geometry.tilesPerBank; ++tile) {
            if (!map.tiles[bank][tile].killed)
                plan.deadXbars[bank][tile] =
                    std::min(map.tiles[bank][tile].deadCrossbars,
                             geometry.crossbarsPerTile);
        }
    }

    CompiledGan compiled = compileGanImpl(model, config, plan);

    FaultImpact &impact = compiled.faultImpact;
    impact.active = true;
    impact.killedTiles = plan.killed.size();
    impact.unusableTiles = plan.killed;
    for (int bank = 0; bank < geometry.banks; ++bank) {
        for (int tile = 0; tile < geometry.tilesPerBank; ++tile) {
            const std::uint64_t dead = plan.deadXbars[bank][tile];
            impact.deadCrossbars += dead;
            const std::uint64_t healthy_used =
                healthy.bankUsage[bank][tile];
            if (map.tiles[bank][tile].killed) {
                // Everything the healthy placement stored here moves.
                impact.remappedCrossbars += healthy_used;
            } else if (healthy_used + dead > geometry.crossbarsPerTile) {
                // The reduced tile no longer fits its healthy share.
                impact.remappedCrossbars +=
                    healthy_used + dead - geometry.crossbarsPerTile;
            }
        }
    }
    impact.capacityLostCrossbars =
        impact.killedTiles * geometry.crossbarsPerTile +
        impact.deadCrossbars;
    impact.capacityLostFraction =
        static_cast<double>(impact.capacityLostCrossbars) /
        static_cast<double>(map.totalCrossbars());
    return compiled;
}

} // namespace lergan
