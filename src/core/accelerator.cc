#include "core/accelerator.hh"

#include <algorithm>
#include <array>
#include <map>

#include "common/logging.hh"
#include "core/validate.hh"
#include "sim/task_graph.hh"
#include "sim/utilization.hh"
#include "telemetry/profiler.hh"
#include "workloads/zoo.hh"

namespace lergan {

namespace {

/** Host-CPU time per weight for the SGD update arithmetic (Sec. V:
 *  "some calculations in CPU"; vectorized on a Xeon E5520-class host). */
constexpr double kCpuNsPerWeight = 0.05;

/**
 * Per-link-kind flit counters, resolved once per iteration build so the
 * per-transfer hot path records through plain pointers instead of a
 * name lookup (registry lookups take the creation mutex).
 */
struct FlitCounters {
    std::array<Counter *, 5> byKind{};

    explicit FlitCounters(MetricsRegistry *metrics)
    {
        if (!metrics)
            return;
        for (LinkKind kind : {LinkKind::HTree, LinkKind::Horizontal,
                              LinkKind::Vertical, LinkKind::Bypass,
                              LinkKind::Bus}) {
            byKind[static_cast<std::size_t>(kind)] = &metrics->counter(
                std::string(linkKindMetricKey(kind)) + ".flits");
        }
    }

    void
    add(LinkKind kind, std::uint64_t flits) const
    {
        if (Counter *counter = byKind[static_cast<std::size_t>(kind)])
            counter->add(flits);
    }
};

/** Charge a route's per-link energies, keyed by wire kind. */
void
chargeRoute(const Topology &topo, const Route &route, Bytes bytes,
            StatSet &stats, const FlitCounters &flits)
{
    for (int link_idx : route.links) {
        const TopoLink &link = topo.link(link_idx);
        const char *key = "energy.comm.htree";
        switch (link.kind) {
          case LinkKind::HTree:      key = "energy.comm.htree"; break;
          case LinkKind::Horizontal:
          case LinkKind::Vertical:   key = "energy.comm.added"; break;
          case LinkKind::Bypass:     key = "energy.comm.bypass"; break;
          case LinkKind::Bus:        key = "energy.comm.bus"; break;
        }
        stats.add(key, link.pjPerByte * static_cast<double>(bytes));
        flits.add(link.kind, flitsFor(bytes));
    }
    stats.add("traffic.bytes", static_cast<double>(bytes));
    stats.add("traffic.byte_hops",
              static_cast<double>(bytes) *
                  static_cast<double>(route.links.size()));
}

/**
 * Builds the task DAG of one training iteration against a Machine.
 *
 * All energies are accrued at construction time (they do not depend on
 * the schedule); the graph execution provides timing and contention.
 */
class IterationBuilder
{
  public:
    IterationBuilder(const GanModel &model, const AcceleratorConfig &config,
                     const CompiledGan &compiled, Machine &machine,
                     MemoryController &controller, const TileModel &tile,
                     std::size_t cpu_res, MetricsRegistry *metrics)
        : model_(model), config_(config), compiled_(compiled),
          machine_(machine), controller_(controller), tile_(tile),
          cpuRes_(cpu_res), metrics_(metrics), flitCounters_(metrics),
          cmode_(config.connection == Connection::ThreeD)
    {
    }

    TaskGraph graph;
    StatSet energy;
    int advances = 0; ///< controller advances issued by build()

    /** Build the full iteration: discriminator step then generator step. */
    void
    build()
    {
        TaskId barrier = advanceController(kNoTask); // -> TrainDisc
        barrier = discriminatorStep(barrier);
        barrier = advanceController(barrier);        // -> UpdateDisc
        barrier = updateNetwork(barrier, NetRole::Discriminator);
        barrier = advanceController(barrier);        // -> TrainGen
        barrier = generatorStep(barrier);
        barrier = advanceController(barrier);        // -> UpdateGen
        updateNetwork(barrier, NetRole::Generator);
    }

  private:
    const GanModel &model_;
    const AcceleratorConfig &config_;
    const CompiledGan &compiled_;
    Machine &machine_;
    MemoryController &controller_;
    const TileModel &tile_;
    std::size_t cpuRes_;
    MetricsRegistry *metrics_;
    FlitCounters flitCounters_;
    bool cmode_;

    const ReRamParams &params() const { return config_.reram; }
    int batch() const { return config_.batchSize; }

    /** Compute resources of an op's tile group. */
    std::vector<std::size_t>
    opResources(const MappedOp &op) const
    {
        // Walk the tiles the allocator actually reserved, not tileCount
        // consecutive tiles from tileStart: when faults retire tiles the
        // allocation skips them, and work must never be scheduled on a
        // killed tile's compute resource (the audit pins this).
        std::vector<std::size_t> resources;
        for (int tile : op.allocation.tiles())
            resources.push_back(machine_.tileComputeRes(op.bank, tile));
        if (resources.empty()) {
            // Fully oversubscribed op with no pinned ranges: fall back
            // to the nominal tile group.
            for (int t = 0; t < op.tileCount; ++t) {
                const int tile =
                    (op.tileStart + t) % params().tilesPerBank;
                resources.push_back(machine_.tileComputeRes(op.bank, tile));
            }
        }
        return resources;
    }

    /** One per-item compute task for @p op. */
    TaskId
    computeTask(const MappedOp &op, const std::vector<TaskId> &deps)
    {
        PicoSeconds duration = tile_.mmvTime(op.cost.waves);
        if (op.perItemWrite) {
            // The per-item gradient operand must be programmed into the
            // crossbars first; parallel across the op's tiles.
            duration += nsToPs(params().weightWriteNsPerElem *
                               static_cast<double>(op.cost.weightElems) /
                               op.tileCount);
            tile_.chargeWeightWrite(energy, op.cost.weightElems);
        }
        tile_.chargeMmv(energy, op.cost.crossbarActivations);
        tile_.chargeBuffer(energy,
                           (op.cost.inputElems + op.cost.outputElems) *
                               params().bytesPerElem);
        if (op.cost.inputElems > op.op.inputData) {
            // Normal reshape materializes the inserted/padding zeros in
            // the consumer's SArray before feeding them (Sec. III-A's
            // storage burden).
            tile_.chargeStorage(energy, 0,
                                (op.cost.inputElems - op.op.inputData) *
                                    params().bytesPerElem);
        }
        energy.add("energy.control", params().controllerPjPerTask);

        const TaskId id =
            graph.addTask({op.op.label, opResources(op), duration, 0, ""});
        for (TaskId dep : deps)
            if (dep != kNoTask)
                graph.addDep(id, dep);
        return id;
    }

    /**
     * Move @p bytes from @p src's tiles to @p dst's tiles.
     *
     * Multi-tile ops stream over parallel leaf wires, so the serialized
     * bytes shrink by the smaller tile-group width; the representative
     * route still charges full energy and models path contention.
     */
    TaskId
    transferTask(const MappedOp &src, const MappedOp &dst, Bytes bytes,
                 TaskId dep, bool charge_storage = false)
    {
        const Route &route =
            machine_.routeTiles(src.bank, src.tileStart, dst.bank,
                                dst.tileStart, cmode_);
        chargeRoute(machine_.topo(), route, bytes, energy,
                    flitCounters_);
        if (charge_storage)
            tile_.chargeStorage(energy, bytes, bytes);
        // Parallel per-tile wires (leaf, horizontal, vertical) stripe
        // the stream across the tile groups; a route through a shared
        // single link (bus, port-to-port bypass) cannot.
        bool shared_link = false;
        for (int link_idx : route.links) {
            const LinkKind kind = machine_.topo().link(link_idx).kind;
            if (kind == LinkKind::Bus || kind == LinkKind::Bypass)
                shared_link = true;
        }
        const int spread =
            shared_link ? 1
                        : std::max(1, std::min(src.tileCount,
                                               dst.tileCount));
        const Bytes wire_bytes = (bytes + spread - 1) / spread;
        const TaskId id = graph.addTask(
            {"xfer:" + src.op.label + "->" + dst.op.label,
             machine_.topo().routeResources(route),
             route.transferTime(wire_bytes), 0, ""});
        if (dep != kNoTask)
            graph.addDep(id, dep);
        return id;
    }

    /** Stream one real training item in from main memory via the bus. */
    TaskId
    loadItemTask(const MappedOp &dst, Bytes bytes, TaskId dep)
    {
        energy.add("energy.comm.bus",
                   params().busPjPerByte * static_cast<double>(bytes));
        flitCounters_.add(LinkKind::Bus, flitsFor(bytes));
        tile_.chargeStorage(energy, 0, bytes);
        const PicoSeconds duration = nsToPs(
            params().bankReadNs +
            static_cast<double>(bytes) / (2 * params().linkBytesPerNs));
        const TaskId id =
            graph.addTask({"load:" + dst.op.label, {}, duration, 0, ""});
        if (dep != kNoTask)
            graph.addDep(id, dep);
        return id;
    }

    /** Controller state advance: mode switches become one task. */
    TaskId
    advanceController(TaskId dep)
    {
        ++advances;
        const auto switches = controller_.advance();
        if (metrics_) {
            metrics_->counter("ctrl.transitions").add(1);
            metrics_
                ->counter(std::string("ctrl.enter.") +
                          ctrlStateMetricKey(controller_.state()))
                .add(1);
            metrics_->counter("ctrl.mode_switches")
                .add(switches.size());
        }
        energy.add("energy.control",
                   controller_.switchEnergy() *
                       static_cast<double>(switches.size()));
        const PicoSeconds duration =
            switches.empty() ? 0 : controller_.switchTime();
        const TaskId id = graph.addTask(
            {std::string("ctrl:") + ctrlStateName(controller_.state()), {},
             duration, 0, ""});
        if (dep != kNoTask)
            graph.addDep(id, dep);
        return id;
    }

    /** Zero-duration barrier joining @p deps. */
    TaskId
    barrierTask(const char *label, const std::vector<TaskId> &deps)
    {
        const TaskId id = graph.addTask({label, {}, 0, 0, ""});
        for (TaskId dep : deps)
            if (dep != kNoTask)
                graph.addDep(id, dep);
        return id;
    }

    /**
     * Run a forward phase chain for one item.
     *
     * @param entry dependency of the first op (previous segment, or the
     *        transfer landing this item's input).
     * @param out_tasks filled with the per-layer compute tasks.
     * @return the last compute task.
     */
    /**
     * Bytes that actually cross wires into @p op: the useful data only.
     * Under normal reshaping the inserted/padding zeros are materialized
     * locally at the consumer (written to its SArray and streamed from
     * its BArray — charged as storage/buffer energy), not shipped.
     */
    Bytes
    usefulInputBytes(const MappedOp &op) const
    {
        return op.op.inputData * params().bytesPerElem;
    }

    TaskId
    forwardChain(const CompiledPhase &phase, TaskId entry,
                 std::vector<TaskId> *out_tasks)
    {
        TaskId prev = entry;
        const MappedOp *prev_op = nullptr;
        for (const MappedOp &op : phase.ops) {
            TaskId dep = prev;
            if (prev_op) {
                dep = transferTask(*prev_op, op, usefulInputBytes(op),
                                   prev);
            }
            prev = computeTask(op, {dep});
            if (out_tasks)
                out_tasks->push_back(prev);
            prev_op = &op;
        }
        return prev;
    }

    /**
     * Error-backprop chain for one item: each op consumes the previous
     * op's gradient plus the cached forward value of its own layer.
     *
     * @param fwd_phase the forward phase whose caches feed this chain.
     * @param fwd_tasks per-layer forward compute tasks of this item.
     * @param grad_by_layer filled with the task producing nabla-z^l,
     *        keyed by layer index (for the weight-gradient chain).
     */
    TaskId
    errorChain(const CompiledPhase &err_phase,
               const CompiledPhase &fwd_phase,
               const std::vector<TaskId> &fwd_tasks, TaskId entry,
               std::map<std::size_t, TaskId> *grad_by_layer)
    {
        TaskId prev = entry;
        const MappedOp *prev_op = nullptr;
        for (const MappedOp &op : err_phase.ops) {
            // The cached z^l of this layer, written by the forward pass.
            const std::size_t layer = op.op.layerIdx;
            const MappedOp &fwd_op = fwd_phase.ops[layer];
            const TaskId cache = transferTask(
                fwd_op, op,
                fwd_op.op.outputData * params().bytesPerElem,
                fwd_tasks[layer], /*charge_storage=*/true);

            TaskId grad_dep = prev;
            if (prev_op) {
                grad_dep = transferTask(*prev_op, op,
                                        usefulInputBytes(op), prev);
            }
            prev = computeTask(op, {grad_dep, cache});
            if (grad_by_layer) {
                // This op produced nabla-z^(layer-1) for the next op; the
                // gradient *entering* it is nabla-z^layer.
                (*grad_by_layer)[layer] = prev;
            }
            prev_op = &op;
        }
        return prev;
    }

    /**
     * Weight-gradient chain for one item. Layer l needs nabla-z^l (from
     * the error chain, or the loss for the last layer) and the cached
     * activation a^(l-1) from the forward pass.
     */
    std::vector<TaskId>
    weightChain(const CompiledPhase &w_phase,
                const CompiledPhase &fwd_phase,
                const std::vector<TaskId> &fwd_tasks,
                const std::map<std::size_t, TaskId> &grad_producers,
                const MappedOp &loss_op, TaskId loss_task,
                TaskId input_task)
    {
        const std::size_t num_layers = fwd_phase.ops.size();
        std::vector<TaskId> tasks;
        for (const MappedOp &op : w_phase.ops) {
            const std::size_t layer = op.op.layerIdx;
            const LayerSpec &spec = model_.net(op.op.role)[layer];

            // nabla-z^l: produced by the error op of layer l+1, i.e. the
            // error chain's entry for this layer; the last layer takes
            // the loss gradient from wherever it landed (the forward
            // output for D training, the bypass arrival for G training).
            TaskId grad_src_task;
            const MappedOp *grad_src_op;
            if (layer + 1 >= num_layers) {
                grad_src_task = loss_task;
                grad_src_op = &loss_op;
            } else {
                auto it = grad_producers.find(layer + 1);
                LERGAN_ASSERT(it != grad_producers.end(),
                              "missing gradient producer for layer ",
                              layer);
                grad_src_task = it->second;
                grad_src_op = nullptr;
                for (const MappedOp &cand :
                     compiled_.phase(errPhaseOf(w_phase.phase)).ops) {
                    if (cand.op.layerIdx == layer + 1)
                        grad_src_op = &cand;
                }
                LERGAN_ASSERT(grad_src_op, "missing error op");
            }

            // The wires carry the dense useful operands: the cached
            // activation a^(l-1) and the gradient nabla-z^l.
            const Bytes a_bytes = spec.inVolume() * params().bytesPerElem;
            const Bytes g_bytes = spec.outVolume() * params().bytesPerElem;

            const TaskId grad_xfer =
                transferTask(*grad_src_op, op, g_bytes, grad_src_task);

            TaskId act_xfer;
            if (layer == 0) {
                // a^0 is the network input, streamed alongside the item.
                act_xfer = barrierTask("a0", {input_task});
            } else {
                const MappedOp &fwd_prev = fwd_phase.ops[layer - 1];
                act_xfer = transferTask(fwd_prev, op, a_bytes,
                                        fwd_tasks[layer - 1],
                                        /*charge_storage=*/true);
            }
            tasks.push_back(computeTask(op, {grad_xfer, act_xfer}));
        }
        return tasks;
    }

    /** Error phase matching a weight phase. */
    static Phase
    errPhaseOf(Phase weight_phase)
    {
        return weight_phase == Phase::DBwdWeight ? Phase::DBwdErr
                                                 : Phase::GBwdErr;
    }

    /** The Fig. 13a discriminator-training step. */
    TaskId
    discriminatorStep(TaskId entry)
    {
        const CompiledPhase &g_fwd = compiled_.phase(Phase::GFwd);
        const CompiledPhase &d_fwd = compiled_.phase(Phase::DFwd);
        const CompiledPhase &d_err = compiled_.phase(Phase::DBwdErr);
        const CompiledPhase &d_w = compiled_.phase(Phase::DBwdWeight);

        const int m = batch();
        std::vector<TaskId> all_weight_tasks;
        for (int j = 0; j < 2 * m; ++j) {
            // Item source: m generated fakes, m real samples.
            TaskId input_task;
            if (j < m) {
                const TaskId g_out = forwardChain(g_fwd, entry, nullptr);
                input_task = transferTask(
                    g_fwd.ops.back(), d_fwd.ops.front(),
                    usefulInputBytes(d_fwd.ops.front()), g_out);
            } else {
                input_task = loadItemTask(
                    d_fwd.ops.front(),
                    usefulInputBytes(d_fwd.ops.front()), entry);
            }

            std::vector<TaskId> fwd_tasks;
            const TaskId d_out =
                forwardChain(d_fwd, input_task, &fwd_tasks);

            std::map<std::size_t, TaskId> grads;
            errorChain(d_err, d_fwd, fwd_tasks, d_out, &grads);

            const auto w_tasks =
                weightChain(d_w, d_fwd, fwd_tasks, grads,
                            d_fwd.ops.back(), d_out, input_task);
            all_weight_tasks.insert(all_weight_tasks.end(),
                                    w_tasks.begin(), w_tasks.end());
        }
        return barrierTask("D.step.done", all_weight_tasks);
    }

    /** The Fig. 13b generator-training step. */
    TaskId
    generatorStep(TaskId entry)
    {
        const CompiledPhase &g_fwd = compiled_.phase(Phase::GFwd);
        const CompiledPhase &d_fwd = compiled_.phase(Phase::DFwd);
        const CompiledPhase &d_err = compiled_.phase(Phase::DBwdErr);
        const CompiledPhase &g_err = compiled_.phase(Phase::GBwdErr);
        const CompiledPhase &g_w = compiled_.phase(Phase::GBwdWeight);

        std::vector<TaskId> all_weight_tasks;
        for (int i = 0; i < batch(); ++i) {
            std::vector<TaskId> g_fwd_tasks;
            const TaskId g_out =
                forwardChain(g_fwd, entry, &g_fwd_tasks);
            const TaskId into_d = transferTask(
                g_fwd.ops.back(), d_fwd.ops.front(),
                usefulInputBytes(d_fwd.ops.front()), g_out);

            std::vector<TaskId> d_fwd_tasks;
            const TaskId d_out =
                forwardChain(d_fwd, into_d, &d_fwd_tasks);

            // Errors flow back through the (frozen) discriminator...
            std::map<std::size_t, TaskId> d_grads;
            const TaskId d_err_out = errorChain(d_err, d_fwd, d_fwd_tasks,
                                                d_out, &d_grads);

            // ...cross back to the generator CU over the bypass...
            const TaskId across = transferTask(
                d_err.ops.back(), g_err.ops.front(),
                usefulInputBytes(g_err.ops.front()), d_err_out);

            // ...and continue through the generator.
            std::map<std::size_t, TaskId> g_grads;
            errorChain(g_err, g_fwd, g_fwd_tasks, across, &g_grads);

            const auto w_tasks =
                weightChain(g_w, g_fwd, g_fwd_tasks, g_grads,
                            g_err.ops.front(), across,
                            /*input_task=*/entry);
            all_weight_tasks.insert(all_weight_tasks.end(),
                                    w_tasks.begin(), w_tasks.end());
        }
        return barrierTask("G.step.done", all_weight_tasks);
    }

    /** Smode read-out, host update arithmetic and kernel rewrites. */
    TaskId
    updateNetwork(TaskId entry, NetRole role)
    {
        const bool disc = role == NetRole::Discriminator;
        const std::uint64_t update_elems =
            disc ? compiled_.updateElemsD : compiled_.updateElemsG;
        std::uint64_t base_weights = 0;
        for (const LayerSpec &layer : model_.net(role))
            base_weights += layer.numWeights();

        // Gradient read-out to the host over the bus.
        const Bytes grad_bytes = base_weights * params().bytesPerElem;
        energy.add("energy.comm.bus",
                   params().busPjPerByte *
                       static_cast<double>(grad_bytes));
        tile_.chargeStorage(energy, grad_bytes, 0);
        const TaskId read = graph.addTask(
            {disc ? "D.grad.readout" : "G.grad.readout",
             {cpuRes_},
             nsToPs(params().bankReadNs +
                    static_cast<double>(grad_bytes) /
                        (2 * params().linkBytesPerNs)),
             0, ""});
        graph.addDep(read, entry);

        // Host-side SGD arithmetic.
        const TaskId cpu = graph.addTask(
            {disc ? "D.update.cpu" : "G.update.cpu",
             {cpuRes_},
             nsToPs(kCpuNsPerWeight * static_cast<double>(base_weights)),
             0, ""});
        graph.addDep(cpu, read);

        // Rewrite every stored copy of the network's kernels.
        std::vector<TaskId> writes;
        const Phase phases[2] = {disc ? Phase::DFwd : Phase::GFwd,
                                 disc ? Phase::DBwdErr : Phase::GBwdErr};
        for (Phase phase : phases) {
            for (const MappedOp &op : compiled_.phase(phase).ops) {
                const PicoSeconds duration = nsToPs(
                    params().weightWriteNsPerElem *
                    static_cast<double>(op.cost.weightElems) /
                    op.tileCount);
                tile_.chargeWeightWrite(energy, op.cost.weightElems);
                const TaskId write = graph.addTask(
                    {"update:" + op.op.label, opResources(op), duration, 0,
                     ""});
                graph.addDep(write, cpu);
                writes.push_back(write);
            }
        }
        energy.add("count.update_elems",
                   static_cast<double>(update_elems));
        return barrierTask(disc ? "D.updated" : "G.updated", writes);
    }
};

} // namespace

LerGanAccelerator::LerGanAccelerator(
    const GanModel &model, AcceleratorConfig config,
    std::shared_ptr<const CompiledGan> compiled)
    : LerGanAccelerator(model, std::move(config), std::move(compiled),
                        Prevalidated{})
{
    const ValidationResult validation =
        validateMapping(model_, config_, *compiled_);
    LERGAN_ASSERT(validation.ok(), "invalid mapping for ", model_.name,
                  " on ", config_.label(), ": ",
                  validation.violations.empty()
                      ? ""
                      : validation.violations.front());
}

LerGanAccelerator::LerGanAccelerator(
    const GanModel &model, AcceleratorConfig config,
    std::shared_ptr<const CompiledGan> compiled, Prevalidated)
    : model_(model), config_(std::move(config)),
      compiled_(compiled ? std::move(compiled)
                         : std::make_shared<const CompiledGan>(
                               compileGan(model_, config_))),
      machine_(config_), controller_(config_.reram, config_.cuPairs),
      tileModel_(config_.reram),
      cpuRes_(machine_.pool().create("host.cpu"))
{
}

TrainingReport
LerGanAccelerator::trainIteration()
{
    return trainIterationImpl(nullptr);
}

TrainingReport
LerGanAccelerator::trainIterationTraced(Tracer &tracer)
{
    tracer.clear();
    return trainIterationImpl(&tracer);
}

std::vector<std::string>
LerGanAccelerator::resourceNames() const
{
    const ResourcePool &pool =
        static_cast<const Machine &>(machine_).pool();
    std::vector<std::string> names;
    names.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i)
        names.push_back(pool[i].name());
    return names;
}

std::shared_ptr<const IterationTemplate>
LerGanAccelerator::makeIterationTemplate()
{
    const auto scope = HostProfiler::global().scope("schedule");
    controller_.reset();

    // Build against a private registry so the template captures the
    // build-time counter increments (controller transitions, per-link
    // flits) as replayable deltas, whether or not the triggering run
    // has telemetry attached.
    MetricsRegistry buildMetrics;
    IterationBuilder builder(model_, config_, *compiled_, machine_,
                             controller_, tileModel_, cpuRes_,
                             &buildMetrics);
    builder.build();

    auto tmpl = std::make_shared<IterationTemplate>();
    tmpl->graph = std::move(builder.graph);
    tmpl->buildEnergy = std::move(builder.energy);
    tmpl->controllerAdvances = builder.advances;
    const MetricsSnapshot snapshot = buildMetrics.snapshot();
    tmpl->counterDeltas.assign(snapshot.counters.begin(),
                               snapshot.counters.end());
    return tmpl;
}

TrainingReport
LerGanAccelerator::trainIterationImpl(Tracer *tracer,
                                      MetricsRegistry *metrics,
                                      const IterationTemplate *tmpl,
                                      ExecRecord *record)
{
    // The rebuild path is replay of a just-built template, so both
    // paths produce byte-identical results by construction.
    std::shared_ptr<const IterationTemplate> own;
    if (!tmpl) {
        own = makeIterationTemplate();
        tmpl = own.get();
    }

    machine_.resetResources();
    // Replay the controller FSM (energy and metrics of the switches are
    // already in the template) so the accelerator ends an iteration in
    // the same state regardless of which path ran it.
    controller_.reset();
    for (int i = 0; i < tmpl->controllerAdvances; ++i)
        controller_.advance();
    if (metrics) {
        for (const auto &[name, delta] : tmpl->counterDeltas)
            metrics->counter(name).add(delta);
    }

    ExecResult exec;
    {
        const auto scope = HostProfiler::global().scope("simulate");
        exec = tmpl->graph.execute(
            machine_.pool(), tracer, metrics,
            externalScratch_ ? externalScratch_ : &scratch_, record);
    }
    if (metrics) {
        metrics->counter("sim.iterations").add(1);
        if (record)
            metrics->counter("critpath.records").add(1);
        recordPoolMetrics(machine_.pool(), *metrics);
    }
    return assembleReport(*tmpl, exec.makespan, exec.stats);
}

TrainingReport
LerGanAccelerator::assembleReport(const IterationTemplate &tmpl,
                                  PicoSeconds iteration_time,
                                  const StatSet &exec_stats) const
{
    TrainingReport report;
    report.benchmark = model_.name;
    report.config = config_.label();
    report.iterationTime = iteration_time;
    report.stats = tmpl.buildEnergy;
    report.stats.merge(exec_stats);
    // Snapshot of the energy total at the moment the run produced it;
    // the audit layer compares the prefix sum against this to detect
    // post-run mutation of any component (audit/audit.hh).
    report.stats.set("audit.energy_total_pj",
                     report.stats.sumPrefix("energy."));
    report.crossbarsUsed = compiled_->crossbarsUsed;
    report.compileMs = compiled_->compileMs;
    report.compileMsTraditional = compiled_->compileMsTraditional;
    if (compiled_->faultImpact.active) {
        // Degradation accounting rides the normal stats channel so the
        // sweep exporters and the Monte Carlo aggregator see it without
        // a side channel. Healthy runs emit nothing (byte-identical
        // reports with the fault-unaware simulator).
        const FaultImpact &impact = compiled_->faultImpact;
        report.stats.set("fault.killed_tiles",
                         static_cast<double>(impact.killedTiles));
        report.stats.set("fault.dead_crossbars",
                         static_cast<double>(impact.deadCrossbars));
        report.stats.set("fault.capacity_lost_xbars",
                         static_cast<double>(impact.capacityLostCrossbars));
        report.stats.set("fault.capacity_lost_frac",
                         impact.capacityLostFraction);
        report.stats.set("fault.remapped_xbars",
                         static_cast<double>(impact.remappedCrossbars));
    }
    return report;
}

TrainingReport
LerGanAccelerator::trainIterations(int n)
{
    return trainIterations(n, nullptr);
}

TrainingReport
LerGanAccelerator::trainIterations(int n, Tracer *tracer,
                                   MetricsRegistry *metrics)
{
    return trainIterations(n, tracer, metrics, nullptr);
}

TrainingReport
LerGanAccelerator::trainIterations(int n, Tracer *tracer,
                                   MetricsRegistry *metrics,
                                   const IterationTemplate *tmpl)
{
    return trainIterations(n, tracer, metrics, tmpl, nullptr);
}

TrainingReport
LerGanAccelerator::trainIterations(int n, Tracer *tracer,
                                   MetricsRegistry *metrics,
                                   const IterationTemplate *tmpl,
                                   ExecRecord *record)
{
    LERGAN_ASSERT(n > 0, "need at least one iteration");
    if (tracer)
        tracer->clear();
    TrainingReport report =
        trainIterationImpl(tracer, metrics, tmpl, record);
    report.stats.set("total.iterations", n);
    report.stats.set("total.time_ms", report.timeMs() * n);
    report.stats.set("total.energy_mj", pjToMj(report.totalEnergyPj()) * n);
    return report;
}

TrainingReport
LerGanAccelerator::estimateIterations(int n, const IterationTemplate *tmpl,
                                      PicoSeconds per_iteration)
{
    LERGAN_ASSERT(n > 0, "need at least one iteration");
    std::shared_ptr<const IterationTemplate> own;
    if (!tmpl) {
        own = makeIterationTemplate();
        tmpl = own.get();
    }
    // Everything but the makespan is a build-time fact of the template;
    // only the timing channel carries the analytic estimate. The
    // executor's sole stat contribution is the task count, reproduced
    // here so estimated and simulated reports share their stat shape.
    StatSet exec_stats;
    exec_stats.set("sim.tasks",
                   static_cast<double>(tmpl->graph.size()));
    TrainingReport report =
        assembleReport(*tmpl, per_iteration, exec_stats);
    report.stats.set("critpath.estimated", 1.0);
    report.stats.set("total.iterations", n);
    report.stats.set("total.time_ms", report.timeMs() * n);
    report.stats.set("total.energy_mj", pjToMj(report.totalEnergyPj()) * n);
    return report;
}

} // namespace lergan
