#include "core/validate.hh"

#include <set>
#include <sstream>
#include <stdexcept>

namespace lergan {

namespace {

/** printf-lite helper appending a violation line. */
template <typename... Args>
void
flag(ValidationResult &result, Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    result.violations.push_back(oss.str());
}

} // namespace

ValidationResult
validateMapping(const GanModel &model, const AcceleratorConfig &config,
                const CompiledGan &compiled)
{
    ValidationResult result;
    const int banks = 6 * config.cuPairs;
    const std::uint64_t per_tile = config.reram.crossbarsPerTile();
    std::set<std::pair<int, int>> failed(config.failedTiles.begin(),
                                         config.failedTiles.end());

    if (compiled.phases.size() != 6) {
        flag(result, "expected 6 compiled phases, got ",
             compiled.phases.size());
        return result;
    }

    std::uint64_t update_d = 0, update_g = 0;
    for (const CompiledPhase &phase : compiled.phases) {
        const std::size_t expected_layers =
            phase.phase == Phase::GFwd || phase.phase == Phase::GBwdErr ||
                    phase.phase == Phase::GBwdWeight
                ? model.generator.size()
                : model.discriminator.size();
        if (phase.ops.size() != expected_layers) {
            flag(result, phaseName(phase.phase), ": ", phase.ops.size(),
                 " ops for ", expected_layers, " layers");
        }
        for (const MappedOp &op : phase.ops) {
            if (op.bank < 0 || op.bank >= banks)
                flag(result, op.op.label, ": bank ", op.bank,
                     " out of range");
            else if (op.bank % 6 != bankForPhase(phase.phase))
                flag(result, op.op.label, ": bank role mismatch");

            if (op.cost.waves == 0)
                flag(result, op.op.label, ": zero waves");
            if (op.cost.inputElems == 0 || op.cost.outputElems == 0)
                flag(result, op.op.label, ": zero traffic");

            const std::uint64_t need =
                std::max<std::uint64_t>(1, op.cost.crossbarsUsed);
            if (op.allocation.reserved() + op.allocation.oversubscribed !=
                need) {
                flag(result, op.op.label, ": allocation covers ",
                     op.allocation.reserved() +
                         op.allocation.oversubscribed,
                     " of ", need, " crossbars");
            }
            for (const CrossbarRange &range : op.allocation.ranges) {
                if (range.bank != op.bank)
                    flag(result, op.op.label, ": range in foreign bank");
                if (range.tile < 0 ||
                    range.tile >= config.reram.tilesPerBank)
                    flag(result, op.op.label, ": range tile ",
                         range.tile, " out of bounds");
                if (range.count > 0 &&
                    failed.count({range.bank, range.tile}))
                    flag(result, op.op.label,
                         ": crossbars placed on failed tile ",
                         range.bank, "/", range.tile);
                if (range.first + range.count > per_tile)
                    flag(result, op.op.label,
                         ": range exceeds tile capacity");
            }

            const bool is_weight_phase =
                phase.phase == Phase::DBwdWeight ||
                phase.phase == Phase::GBwdWeight;
            if (!is_weight_phase) {
                if (phase.phase == Phase::GFwd ||
                    phase.phase == Phase::GBwdErr) {
                    update_g += op.cost.weightElems;
                } else {
                    update_d += op.cost.weightElems;
                }
            }
        }
    }

    if (update_d != compiled.updateElemsD)
        flag(result, "discriminator update volume mismatch: ", update_d,
             " vs ", compiled.updateElemsD);
    if (update_g != compiled.updateElemsG)
        flag(result, "generator update volume mismatch: ", update_g,
             " vs ", compiled.updateElemsG);

    if (static_cast<int>(compiled.bankUsage.size()) != banks) {
        flag(result, "bank usage table has ", compiled.bankUsage.size(),
             " banks, expected ", banks);
    } else {
        for (int bank = 0; bank < banks; ++bank) {
            for (int tile = 0; tile < config.reram.tilesPerBank; ++tile) {
                if (compiled.bankUsage[bank][tile] > per_tile)
                    flag(result, "bank ", bank, " tile ", tile,
                         " over capacity");
                if (compiled.bankUsage[bank][tile] > 0 &&
                    failed.count({bank, tile}))
                    flag(result, "bank ", bank, " tile ", tile,
                         " is failed but used");
            }
        }
    }
    return result;
}

void
throwIfInvalid(const GanModel &model, const AcceleratorConfig &config,
               const CompiledGan &compiled)
{
    const ValidationResult result =
        validateMapping(model, config, compiled);
    if (result.ok())
        return;
    std::ostringstream oss;
    oss << "invalid mapping for " << model.name << " on "
        << config.label() << ":";
    for (const std::string &violation : result.violations)
        oss << "\n  " << violation;
    throw std::runtime_error(oss.str());
}

CompiledGan
compileGanValidated(const GanModel &model, const AcceleratorConfig &config)
{
    CompiledGan compiled = compileGan(model, config);
    throwIfInvalid(model, config, compiled);
    return compiled;
}

} // namespace lergan
