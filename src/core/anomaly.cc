#include "core/anomaly.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "critpath/critpath.hh"

namespace lergan {

namespace {

/** Why a point landed in the report, in severity order. */
enum class Reason { Failed, AuditDirty, Slow };

struct Anomaly {
    std::size_t index;
    Reason reason;
    double hostMs;
};

const char *
reasonLabel(Reason reason)
{
    switch (reason) {
    case Reason::Failed:
        return "failed";
    case Reason::AuditDirty:
        return "audit dirty";
    case Reason::Slow:
        return "slow";
    }
    return "?";
}

/** Nearest-rank quantile of @p q over @p values (unsorted, copied). */
double
nearestRank(std::vector<double> values, double q)
{
    if (values.empty())
        return std::numeric_limits<double>::infinity();
    std::sort(values.begin(), values.end());
    const double rank = std::ceil(q * static_cast<double>(values.size()));
    std::size_t idx =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (idx >= values.size())
        idx = values.size() - 1;
    return values[idx];
}

} // namespace

std::size_t
writeAnomalyReport(std::ostream &os,
                   const std::vector<SweepResult> &results,
                   const FlightRecorder &recorder,
                   const AnomalyOptions &options)
{
    std::vector<double> hostTimes;
    for (const SweepResult &result : results)
        if (!result.failed && result.telemetry.ran)
            hostTimes.push_back(result.telemetry.hostMs);
    const double threshold = nearestRank(hostTimes, options.quantile);

    std::vector<Anomaly> anomalies;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &result = results[i];
        const double hostMs =
            result.telemetry.ran ? result.telemetry.hostMs : 0.0;
        if (result.failed)
            anomalies.push_back({i, Reason::Failed, hostMs});
        else if (result.audit.ran && !result.audit.ok())
            anomalies.push_back({i, Reason::AuditDirty, hostMs});
        else if (result.telemetry.ran && hostMs > threshold)
            anomalies.push_back({i, Reason::Slow, hostMs});
    }
    // Severity first (failures, dirty audits, then merely slow), the
    // slowest first within a class, index as the tie-break.
    std::sort(anomalies.begin(), anomalies.end(),
              [](const Anomaly &a, const Anomaly &b) {
                  if (a.reason != b.reason)
                      return a.reason < b.reason;
                  if (a.hostMs != b.hostMs)
                      return a.hostMs > b.hostMs;
                  return a.index < b.index;
              });

    os << "anomaly report: " << anomalies.size() << " of "
       << results.size() << " points";
    if (!hostTimes.empty()) {
        os << " (host-ms p"
           << static_cast<int>(options.quantile * 100.0) << " = "
           << threshold << " ms over " << hostTimes.size()
           << " timed points)";
    }
    os << '\n';

    const std::size_t shown =
        std::min(anomalies.size(), options.maxPoints);
    for (std::size_t a = 0; a < shown; ++a) {
        const Anomaly &anomaly = anomalies[a];
        const SweepResult &result = results[anomaly.index];
        os << "\npoint " << anomaly.index << "  " << result.benchmark
           << " / " << result.configLabel << "  ["
           << reasonLabel(anomaly.reason) << ']';
        if (result.telemetry.ran) {
            os << "  host " << result.telemetry.hostMs << " ms";
            if (result.telemetry.queueWaitMs >= 0.0)
                os << ", queue wait " << result.telemetry.queueWaitMs
                   << " ms";
        }
        os << '\n';
        if (result.failed && !result.error.empty())
            os << "  error: " << result.error << '\n';
        if (result.audit.ran && !result.audit.ok())
            os << "  audit: " << result.audit.summary() << '\n';

        const std::vector<SpanEvent> spans =
            recorder.collectTrace(static_cast<TraceId>(anomaly.index) +
                                  1);
        if (!spans.empty()) {
            printSpanTree(os, spans);
        } else if (!result.traceDump.empty()) {
            // The failure-time dump survives even when the live ring
            // has since been overwritten by other points.
            os << result.traceDump;
        } else {
            os << "  (no spans resident — evicted, or run untraced)\n";
        }
        if (result.report.critpath && !result.report.critpath->empty())
            result.report.critpath->path.print(os);
    }
    if (anomalies.size() > shown) {
        os << "\n(" << anomalies.size() - shown
           << " more anomalous points not shown; raise "
              "AnomalyOptions::maxPoints)\n";
    }
    if (recorder.dropped() > 0) {
        os << "\nnote: flight recorder overwrote " << recorder.dropped()
           << " spans (ring capacity " << recorder.laneCapacity()
           << "/lane); oldest traces may be partial\n";
    }
    return anomalies.size();
}

} // namespace lergan
