#include "core/sweep.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace lergan {

ExperimentSweep &
ExperimentSweep::add(const GanModel &model)
{
    models_.push_back(model);
    return *this;
}

ExperimentSweep &
ExperimentSweep::add(const std::string &label,
                     const AcceleratorConfig &config)
{
    configs_.emplace_back(label, config);
    return *this;
}

std::vector<SweepResult>
ExperimentSweep::run(int iterations) const
{
    LERGAN_ASSERT(!models_.empty() && !configs_.empty(),
                  "sweep needs at least one benchmark and one config");
    std::vector<SweepResult> results;
    results.reserve(models_.size() * configs_.size());
    for (const GanModel &model : models_) {
        for (const auto &[label, config] : configs_) {
            LerGanAccelerator accelerator(model, config);
            SweepResult result;
            result.benchmark = model.name;
            result.configLabel = label;
            result.report = accelerator.trainIterations(iterations);
            result.crossbarsUsed = accelerator.compiled().crossbarsUsed;
            result.oversubscribed =
                accelerator.compiled().oversubscribedCrossbars;
            results.push_back(std::move(result));
        }
    }
    return results;
}

void
ExperimentSweep::writeJson(std::ostream &os,
                           const std::vector<SweepResult> &results)
{
    JsonWriter json(os);
    json.beginArray();
    for (const SweepResult &result : results) {
        json.beginObject();
        json.key("benchmark").value(result.benchmark);
        json.key("config").value(result.configLabel);
        json.key("ms_per_iteration").value(result.report.timeMs());
        json.key("mj_per_iteration")
            .value(pjToMj(result.report.totalEnergyPj()));
        json.key("crossbars").value(result.crossbarsUsed);
        json.key("oversubscribed").value(result.oversubscribed);
        json.key("stats").beginObject();
        for (const auto &[name, value] : result.report.stats)
            json.key(name).value(value);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    os << '\n';
}

void
ExperimentSweep::writeCsv(std::ostream &os,
                          const std::vector<SweepResult> &results)
{
    os << "benchmark,config,ms_per_iteration,mj_per_iteration,"
          "crossbars,oversubscribed,energy_compute_pj,energy_comm_pj,"
          "energy_update_pj\n";
    for (const SweepResult &result : results) {
        os << result.benchmark << ',' << result.configLabel << ','
           << result.report.timeMs() << ','
           << pjToMj(result.report.totalEnergyPj()) << ','
           << result.crossbarsUsed << ',' << result.oversubscribed << ','
           << result.report.computeEnergyPj() << ','
           << result.report.commEnergyPj() << ','
           << result.report.stats.get("energy.update") << '\n';
    }
}

} // namespace lergan
