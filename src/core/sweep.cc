#include "core/sweep.hh"

#include <chrono>

#include "common/logging.hh"
#include "core/validate.hh"
#include "sim/trace.hh"

namespace lergan {

ExperimentSweep::ExperimentSweep()
    : cache_(std::make_shared<CompiledModelCache>()),
      templates_(std::make_shared<MemoCache<IterationTemplate>>())
{
}

ExperimentSweep &
ExperimentSweep::addBenchmark(const GanModel &model)
{
    models_.push_back(model);
    return *this;
}

ExperimentSweep &
ExperimentSweep::addConfig(const std::string &label,
                           const AcceleratorConfig &config)
{
    configs_.emplace_back(label, config);
    return *this;
}

ExperimentSweep &
ExperimentSweep::addPoint(const GanModel &model, const std::string &label,
                          const AcceleratorConfig &config)
{
    extraPoints_.push_back({model, label, config});
    return *this;
}

ExperimentSweep &
ExperimentSweep::auditWith(AuditOptions options)
{
    audit_ = std::move(options);
    audit_.enabled = true;
    return *this;
}

ExperimentSweep &
ExperimentSweep::withTelemetry(std::shared_ptr<MetricsRegistry> registry)
{
    telemetry_ = std::move(registry);
    return *this;
}

std::size_t
ExperimentSweep::pointCount() const
{
    return models_.size() * configs_.size() + extraPoints_.size();
}

std::vector<SweepResult>
ExperimentSweep::run(const RunOptions &options) const
{
    struct Point {
        const GanModel *model;
        const std::string *label;
        const AcceleratorConfig *config;
    };
    std::vector<Point> points;
    points.reserve(pointCount());
    for (const GanModel &model : models_)
        for (const auto &[label, config] : configs_)
            points.push_back({&model, &label, &config});
    for (const ExplicitPoint &extra : extraPoints_)
        points.push_back({&extra.model, &extra.label, &extra.config});
    LERGAN_ASSERT(!points.empty(),
                  "sweep needs at least one benchmark and one config");
    LERGAN_ASSERT(options.iterations > 0, "need at least one iteration");
    LERGAN_ASSERT(options.threads >= 0,
                  "threads must be >= 0 (0 = hardware concurrency)");

    MetricsRegistry *metrics = telemetry_.get();
    std::vector<SweepResult> results(points.size());
    const auto statuses = runPoints(
        points.size(), static_cast<unsigned>(options.threads),
        [&](std::size_t i) {
            const Point &point = points[i];
            const auto began = options.pointTelemetry
                                   ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
            point.config->checkUsable();
            // Validated compile: every mapping entering the cache from
            // the execution engine passes validateMapping, with full
            // diagnostics on failure (core/validate.hh).
            SweepResult &result = results[i];
            bool cache_hit = false;
            std::shared_ptr<const CompiledGan> compiled =
                cache_->get(*point.model, *point.config,
                            compileGanValidated, &cache_hit);
            // The cache only holds validated mappings, so the point
            // skips re-validating them per run.
            LerGanAccelerator accelerator(*point.model, *point.config,
                                          std::move(compiled),
                                          LerGanAccelerator::Prevalidated{});
            // The iteration DAG is a pure function of (model, config):
            // lower it once per pair, replay it for every point and
            // every repeated run() of the sweep.
            std::shared_ptr<const IterationTemplate> tmpl =
                templates_->get(
                    pairFingerprint(*point.model, *point.config),
                    [&] { return accelerator.makeIterationTemplate(); });
            Tracer tracer;
            Tracer *trace =
                audit_.enabled && audit_.timing ? &tracer : nullptr;
            result.report = accelerator.trainIterations(
                options.iterations, trace, metrics, tmpl.get());
            result.crossbarsUsed = accelerator.compiled().crossbarsUsed;
            result.oversubscribed =
                accelerator.compiled().oversubscribedCrossbars;
            if (audit_.enabled) {
                const AuditContext context(audit_);
                result.audit = context.run(
                    {point.model, point.config, &accelerator.compiled(),
                     &result.report, trace});
            }
            if (options.pointTelemetry) {
                result.telemetry.ran = true;
                result.telemetry.cacheHit = cache_hit;
                result.telemetry.hostMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - began)
                        .count();
            }
        },
        options.onProgress, metrics);

    if (metrics) {
        // Exact totals (deterministic: misses = distinct compiled
        // pairs, regardless of worker count or completion order).
        metrics->gauge("cache.model.hits")
            .set(static_cast<double>(cache_->hits()));
        metrics->gauge("cache.model.misses")
            .set(static_cast<double>(cache_->misses()));
        metrics->gauge("cache.model.size")
            .set(static_cast<double>(cache_->size()));
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepResult &result = results[i];
        if (!statuses[i].ok) {
            // Discard anything a partially-run body left behind.
            result = SweepResult{};
            result.failed = true;
            result.error = statuses[i].error;
        }
        result.benchmark = points[i].model->name;
        result.configLabel = *points[i].label;
    }
    return results;
}

std::vector<SweepResult>
ExperimentSweep::run(int iterations) const
{
    RunOptions options;
    options.iterations = iterations;
    return run(options);
}

} // namespace lergan
