#include "core/sweep.hh"

#include <chrono>
#include <unordered_map>

#include "common/logging.hh"
#include "core/validate.hh"
#include "exec/thread_pool.hh"
#include "critpath/critpath.hh"
#include "critpath/whatif.hh"
#include "sim/trace.hh"
#include "telemetry/tracing.hh"

namespace lergan {

ExperimentSweep::ExperimentSweep()
    : cache_(std::make_shared<CompiledModelCache>()),
      templates_(std::make_shared<MemoCache<IterationTemplate>>())
{
}

ExperimentSweep &
ExperimentSweep::addBenchmark(const GanModel &model)
{
    models_.push_back(model);
    return *this;
}

ExperimentSweep &
ExperimentSweep::addConfig(const std::string &label,
                           const AcceleratorConfig &config)
{
    configs_.emplace_back(label, config);
    return *this;
}

ExperimentSweep &
ExperimentSweep::addPoint(const GanModel &model, const std::string &label,
                          const AcceleratorConfig &config)
{
    extraPoints_.push_back({model, label, config});
    return *this;
}

ExperimentSweep &
ExperimentSweep::auditWith(AuditOptions options)
{
    audit_ = std::move(options);
    audit_.enabled = true;
    return *this;
}

ExperimentSweep &
ExperimentSweep::withTelemetry(std::shared_ptr<MetricsRegistry> registry)
{
    telemetry_ = std::move(registry);
    return *this;
}

ExperimentSweep &
ExperimentSweep::withTracing(std::shared_ptr<FlightRecorder> recorder)
{
    recorder_ = std::move(recorder);
    return *this;
}

ExperimentSweep &
ExperimentSweep::withCriticalPath(bool enabled)
{
    critpath_ = enabled;
    return *this;
}

ExperimentSweep &
ExperimentSweep::withBoundPruning(bool enabled)
{
    pruning_ = enabled;
    return *this;
}

std::size_t
ExperimentSweep::pointCount() const
{
    return models_.size() * configs_.size() + extraPoints_.size();
}

std::vector<SweepResult>
ExperimentSweep::run(const RunOptions &options) const
{
    struct Point {
        const GanModel *model;
        const std::string *label;
        const AcceleratorConfig *config;
        /** First-config grid point: the pruning reference, always
         *  simulated fully. */
        bool baseline = false;
        /** Non-baseline grid point: bound pruning may skip its event
         *  simulation. Explicit extra points are never prunable. */
        bool prunable = false;
    };
    std::vector<Point> points;
    points.reserve(pointCount());
    for (const GanModel &model : models_) {
        for (std::size_t c = 0; c < configs_.size(); ++c) {
            points.push_back({&model, &configs_[c].first,
                              &configs_[c].second, c == 0, c != 0});
        }
    }
    for (const ExplicitPoint &extra : extraPoints_)
        points.push_back({&extra.model, &extra.label, &extra.config});
    LERGAN_ASSERT(!points.empty(),
                  "sweep needs at least one benchmark and one config");
    LERGAN_ASSERT(options.iterations > 0, "need at least one iteration");
    LERGAN_ASSERT(options.threads >= 0,
                  "threads must be >= 0 (0 = hardware concurrency)");

    MetricsRegistry *metrics = telemetry_.get();
    std::vector<SweepResult> results(points.size());

    // Per-benchmark baseline makespans the pruning decisions compare
    // against. Filled on the main thread between the baseline batch and
    // the rest, so the point bodies only ever read it.
    std::unordered_map<std::string, PicoSeconds> baselineTime;

    // One arena per worker lane, reused across every point that lane
    // runs (and across the pruning path's two batches): the executor's
    // calendar/counter buffers and the critpath record grow to the
    // largest graph once, then steady-state points allocate nothing.
    // Lanes never run two bodies concurrently (ThreadPool::forEach), so
    // indexing by lane is race-free.
    struct WorkerArena {
        ExecScratch scratch;
        ExecRecord record;
    };
    const unsigned workerCount =
        options.threads == 0 ? defaultThreadCount()
                             : static_cast<unsigned>(options.threads);
    std::vector<WorkerArena> arenas(workerCount);

    const auto body = [&](std::size_t i, std::size_t lane) {
        WorkerArena &arena = arenas[lane];
        const Point &point = points[i];
        const auto began = options.pointTelemetry
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
        // Under withTracing, the engine's root "point" span is open on
        // this thread; name it and hang the stage spans below it. All
        // of this is inert (one TL load per scope) when untraced.
        annotate("benchmark", point.model->name);
        annotate("config", *point.label);
        point.config->checkUsable();
        // Validated compile: every mapping entering the cache from
        // the execution engine passes validateMapping, with full
        // diagnostics on failure (core/validate.hh).
        SweepResult &result = results[i];
        bool cache_hit = false;
        std::shared_ptr<const CompiledGan> compiled;
        {
            Span span("compile");
            compiled = cache_->get(*point.model, *point.config,
                                   compileGanValidated, &cache_hit);
            span.attr("cache_hit", cache_hit);
        }
        // The cache only holds validated mappings, so the point
        // skips re-validating them per run.
        LerGanAccelerator accelerator(*point.model, *point.config,
                                      std::move(compiled),
                                      LerGanAccelerator::Prevalidated{});
        accelerator.useScratch(&arena.scratch);
        // The iteration DAG is a pure function of (model, config):
        // lower it once per pair, replay it for every point and
        // every repeated run() of the sweep.
        std::shared_ptr<const IterationTemplate> tmpl;
        {
            Span span("template");
            tmpl = templates_->get(
                pairFingerprint(*point.model, *point.config),
                [&] { return accelerator.makeIterationTemplate(); });
        }

        const auto recordHostTelemetry = [&] {
            if (!options.pointTelemetry)
                return;
            result.telemetry.ran = true;
            result.telemetry.cacheHit = cache_hit;
            result.telemetry.hostMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - began)
                    .count();
        };

        if (pruning_ && point.prunable) {
            const auto base = baselineTime.find(point.model->name);
            if (base != baselineTime.end()) {
                const MakespanBounds bounds = makespanBounds(
                    tmpl->graph, accelerator.machine().pool().size());
                if (bounds.provenFasterThan(base->second) ||
                    bounds.provenSlowerThan(base->second)) {
                    // The bracket already decides which side of the
                    // baseline this point lands on: skip the full event
                    // simulation and report the executor-mirror
                    // makespan, which equals what the simulation would
                    // have produced (energies are build-time facts and
                    // stay exact). No execution, so no audit or record.
                    Span span("estimate");
                    span.attr("pruned", true);
                    result.report = accelerator.estimateIterations(
                        options.iterations, tmpl.get(), bounds.upper);
                    result.crossbarsUsed =
                        accelerator.compiled().crossbarsUsed;
                    result.oversubscribed =
                        accelerator.compiled().oversubscribedCrossbars;
                    if (metrics)
                        metrics->counter("critpath.pruned").add(1);
                    recordHostTelemetry();
                    return;
                }
            }
        }

        Tracer tracer;
        Tracer *trace =
            audit_.enabled && audit_.timing ? &tracer : nullptr;
        // The arena record's buffers are reused across this lane's
        // points; makeRecordedRun moves them into the result (the
        // record is part of the report), so only critpath-off sweeps
        // are fully allocation-free in steady state.
        ExecRecord &record = arena.record;
        {
            Span span("simulate");
            result.report = accelerator.trainIterations(
                options.iterations, trace, metrics, tmpl.get(),
                critpath_ ? &record : nullptr);
        }
        if (critpath_) {
            result.report.critpath = makeRecordedRun(
                std::shared_ptr<const TaskGraph>(tmpl, &tmpl->graph),
                accelerator.resourceNames(), std::move(record));
            record = ExecRecord{};
        }
        if (pruning_ && metrics)
            metrics->counter("critpath.simulated").add(1);
        result.crossbarsUsed = accelerator.compiled().crossbarsUsed;
        result.oversubscribed =
            accelerator.compiled().oversubscribedCrossbars;
        if (audit_.enabled) {
            Span span("audit");
            const AuditContext context(audit_);
            result.audit = context.run(
                {point.model, point.config, &accelerator.compiled(),
                 &result.report, trace});
            span.attr("clean", result.audit.ok());
            span.attr("checks", static_cast<std::int64_t>(
                                    result.audit.checksRun));
        }
        recordHostTelemetry();
    };

    FlightRecorder *recorder = recorder_.get();
    std::vector<PointStatus> statuses;
    if (!pruning_) {
        statuses = runPoints(points.size(),
                             static_cast<unsigned>(options.threads),
                             body, options.onProgress, metrics,
                             recorder);
    } else {
        // Baselines first (they anchor the pruning decisions), then
        // everything else; progress counts stay monotonic across the
        // two batches.
        statuses.resize(points.size());
        std::vector<std::size_t> first, rest;
        for (std::size_t i = 0; i < points.size(); ++i)
            (points[i].baseline ? first : rest).push_back(i);
        const auto runBatch = [&](const std::vector<std::size_t> &batch,
                                  std::size_t done_before) {
            if (batch.empty())
                return;
            ProgressFn progress;
            if (options.onProgress) {
                progress = [&, done_before](std::size_t done,
                                            std::size_t) {
                    options.onProgress(done_before + done,
                                       points.size());
                };
            }
            // Batch index != grid index, so map trace ids back to the
            // original grid: a point keeps one trace id no matter
            // which batch ran it.
            const auto batch_statuses = runPoints(
                batch.size(), static_cast<unsigned>(options.threads),
                [&](std::size_t k, std::size_t lane) {
                    body(batch[k], lane);
                },
                progress, metrics, recorder, [&](std::size_t k) {
                    return static_cast<TraceId>(batch[k]) + 1;
                });
            for (std::size_t k = 0; k < batch.size(); ++k)
                statuses[batch[k]] = batch_statuses[k];
        };
        runBatch(first, 0);
        for (std::size_t i : first) {
            if (statuses[i].ok) {
                baselineTime[points[i].model->name] =
                    results[i].report.iterationTime;
            }
        }
        runBatch(rest, first.size());
    }

    if (metrics) {
        // Exact totals (deterministic: misses = distinct compiled
        // pairs, regardless of worker count or completion order).
        metrics->gauge("cache.model.hits")
            .set(static_cast<double>(cache_->hits()));
        metrics->gauge("cache.model.misses")
            .set(static_cast<double>(cache_->misses()));
        metrics->gauge("cache.model.size")
            .set(static_cast<double>(cache_->size()));
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepResult &result = results[i];
        if (!statuses[i].ok) {
            // Discard anything a partially-run body left behind.
            result = SweepResult{};
            result.failed = true;
            result.error = statuses[i].error;
            result.traceDump = std::move(statuses[i].spanDump);
        }
        result.benchmark = points[i].model->name;
        result.configLabel = *points[i].label;
        if (recorder && options.pointTelemetry) {
            result.telemetry.traced = true;
            result.telemetry.spanCount = statuses[i].spanCount;
            result.telemetry.queueWaitMs = statuses[i].queueWaitMs;
        }
    }
    return results;
}

std::vector<SweepResult>
ExperimentSweep::run(int iterations) const
{
    RunOptions options;
    options.iterations = iterations;
    return run(options);
}

} // namespace lergan
