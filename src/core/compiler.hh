/**
 * @file
 * The LerGAN compiler (paper Sec. V: ZFDM and DataMapping).
 *
 * Lowers a GanModel under an AcceleratorConfig into mapped operations:
 * each layer-phase op gets its reshape analysis, replica vector (Table
 * III / Eq. 14), per-item cost, owning bank (the Fig. 13 B1..B6 roles)
 * and a tile range inside that bank. Normalized-space configurations are
 * fitted to their crossbar budget here.
 */

#ifndef LERGAN_CORE_COMPILER_HH
#define LERGAN_CORE_COMPILER_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "faults/wear.hh"
#include "nn/training.hh"
#include "reram/allocator.hh"
#include "zfdr/cost.hh"

namespace lergan {

/** One layer-phase operation, fully placed and costed. */
struct MappedOp {
    LayerOp op;
    /** Per-item execution cost. */
    OpCost cost;
    /** Replica vector (ZFDR ops; all-ones otherwise). */
    ReplicaVector replicas;
    /** Whole-matrix duplication for dense ops (Eq. 14). */
    std::uint64_t denseRep = 1;
    /** True when this op runs zero-free reshaped. */
    bool usesZfdr = false;
    /**
     * True for W-CONV ops: the per-item gradient operand must be written
     * into the crossbars before the MMVs can run (a ReRAM write cost the
     * reshape scheme shrinks by dropping zeros).
     */
    bool perItemWrite = false;
    /** Owning bank, 0..5 (B1..B6 of Fig. 13). */
    int bank = 0;
    /** First tile of the op's tile group inside the bank. */
    int tileStart = 0;
    /** Tiles occupied by the allocated crossbars (1..16). */
    int tileCount = 1;
    /** The actual crossbar ranges reserved for this op. */
    Allocation allocation;
};

/** All ops of one phase, in dataflow order. */
struct CompiledPhase {
    Phase phase = Phase::GFwd;
    std::vector<MappedOp> ops;
};

/**
 * Graceful-degradation accounting of a fault-injected compile: what the
 * fault map cost this mapping, re-derived against the healthy placement
 * of the same (model, config-without-faults) pair.
 */
struct FaultImpact {
    /** True when a fault map was materialized for this compile. */
    bool active = false;
    /** Tiles removed entirely (kill faults, wear-out, manual list). */
    std::uint64_t killedTiles = 0;
    /** Crossbars disabled on tiles that survived. */
    std::uint64_t deadCrossbars = 0;
    /** Crossbars of capacity lost machine-wide (killed + dead). */
    std::uint64_t capacityLostCrossbars = 0;
    /** capacityLostCrossbars over the machine's total crossbars. */
    double capacityLostFraction = 0.0;
    /**
     * Crossbars the healthy placement had put on now-unusable tiles —
     * the remap traffic the fault forces through the allocator.
     */
    std::uint64_t remappedCrossbars = 0;
    /** Every unusable tile, bank-major (killed + manual failedTiles). */
    std::vector<std::pair<int, int>> unusableTiles;
};

/** A fully compiled GAN. */
struct CompiledGan {
    /** The six phases, indexed in kAllPhases order. */
    std::vector<CompiledPhase> phases;
    /** CArray crossbars occupied across all banks. */
    std::uint64_t crossbarsUsed = 0;
    /** Stored weight elements (replicas included). */
    std::uint64_t weightElems = 0;
    /** Kernel-weight elements rewritten when updating the generator. */
    std::uint64_t updateElemsG = 0;
    /** Kernel-weight elements rewritten when updating the discriminator. */
    std::uint64_t updateElemsD = 0;
    /** Modeled compile time of the traditional (dense) flow, ms. */
    double compileMsTraditional = 0.0;
    /** Modeled compile time including ZFDR/ZFDM work, ms. */
    double compileMs = 0.0;
    /** Crossbars used per [bank][tile] by the final placement. */
    std::vector<std::vector<std::uint64_t>> bankUsage;
    /** Crossbars beyond physical capacity (time-shared if non-zero). */
    std::uint64_t oversubscribedCrossbars = 0;
    /** Degradation accounting of a fault-injected compile. */
    FaultImpact faultImpact;

    const CompiledPhase &phase(Phase phase) const;

    /** Print the per-tile CArray occupancy map. */
    void printMemoryMap(std::ostream &os) const;
};

/** Bank (Fig. 13 role) that hosts @p phase. */
int bankForPhase(Phase phase);

/** Compile @p model for @p config. */
CompiledGan compileGan(const GanModel &model,
                       const AcceleratorConfig &config);

/**
 * Per-tile weight-write densities of @p compiled — the wear model's
 * inputs (faults/wear.hh). Kernel copies rewrite once per update;
 * per-item-write ops program once per minibatch item; replicas multiply
 * both, which is how the ZFDR duplication degree feeds wear.
 */
WearInputs compiledWriteDensities(const CompiledGan &compiled,
                                  const AcceleratorConfig &config);

} // namespace lergan

#endif // LERGAN_CORE_COMPILER_HH
