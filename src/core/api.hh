/**
 * @file
 * Public umbrella API.
 *
 * Downstream users include this single header to parse or pick a GAN,
 * choose a configuration and simulate training:
 *
 * @code
 *   #include "core/api.hh"
 *   using namespace lergan;
 *
 *   GanModel dcgan = makeBenchmark("DCGAN");
 *   AcceleratorConfig cfg = AcceleratorConfig::lerGan(ReplicaDegree::Low);
 *   TrainingReport report = simulateTraining(dcgan, cfg, 10);
 *   report.print(std::cout);
 * @endcode
 */

#ifndef LERGAN_CORE_API_HH
#define LERGAN_CORE_API_HH

#include "core/accelerator.hh"
#include "core/compiler.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "nn/parser.hh"
#include "nn/zero_analysis.hh"
#include "workloads/zoo.hh"

namespace lergan {

/**
 * Convenience one-shot: compile @p model for @p config and simulate
 * @p iterations training iterations.
 */
TrainingReport simulateTraining(const GanModel &model,
                                const AcceleratorConfig &config,
                                int iterations = 1);

} // namespace lergan

#endif // LERGAN_CORE_API_HH
