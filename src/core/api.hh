/**
 * @file
 * Public umbrella API.
 *
 * Downstream users include this single header to parse or pick a GAN,
 * choose a configuration and simulate training. The primary entry point
 * is the session: construct it once per configuration, then run any
 * number of models — each distinct (model, config) pair is compiled
 * exactly once and the immutable compiled mapping is reused by every
 * subsequent run:
 *
 * @code
 *   #include "core/api.hh"
 *   using namespace lergan;
 *
 *   SimulationSession session(
 *       AcceleratorConfig::lerGan(ReplicaDegree::Low));
 *   GanModel dcgan = makeBenchmark("DCGAN");
 *   TrainingReport report = session.run(dcgan, 10); // compiles DCGAN
 *   report.print(std::cout);
 *   session.run(dcgan);                             // cache hit
 * @endcode
 *
 * Grids of (benchmark x configuration) points run through
 * ExperimentSweep (core/sweep.hh), which executes points in parallel
 * under RunOptions{threads, iterations, onProgress}.
 */

#ifndef LERGAN_CORE_API_HH
#define LERGAN_CORE_API_HH

#include <cstdint>
#include <memory>

#include "audit/audit.hh"
#include "core/accelerator.hh"
#include "core/compiler.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "exec/model_cache.hh"
#include "nn/parser.hh"
#include "telemetry/flight_recorder.hh"
#include "nn/zero_analysis.hh"
#include "workloads/zoo.hh"

namespace lergan {

/**
 * A reusable simulation context for one accelerator configuration.
 *
 * The session owns (or shares) a CompiledModelCache: run() compiles a
 * given model at most once and reuses the cached mapping afterwards,
 * which is what makes repeated runs — convergence studies, parameter
 * explorations, serving many queries against the same configuration —
 * pay the compile cost once instead of per call.
 *
 * Thread safety: run() may be called concurrently from several threads;
 * the cache serializes compilation per (model, config) pair and every
 * run simulates on its own private machine state.
 *
 * User errors (an unusable configuration, see
 * AcceleratorConfig::checkUsable) surface as std::invalid_argument;
 * internal invariant violations still panic.
 */
class SimulationSession
{
  public:
    /** Session with a private compiled-model cache. */
    explicit SimulationSession(AcceleratorConfig config);

    /** Session sharing @p cache with other sessions or sweeps. */
    SimulationSession(AcceleratorConfig config,
                      std::shared_ptr<CompiledModelCache> cache);

    /**
     * Simulate @p iterations training iterations of @p model.
     *
     * With auditing enabled (auditWith), the run is additionally traced
     * and cross-checked by an AuditContext; a violated invariant throws
     * AuditError. Audit failures are simulator bugs, not user errors.
     */
    TrainingReport run(const GanModel &model, int iterations = 1) const;

    /**
     * Enable (or reconfigure) result auditing for every subsequent
     * run() of this session. Not thread-safe against concurrent run()
     * calls; configure before handing the session out.
     */
    SimulationSession &auditWith(AuditOptions options);

    /**
     * Inject @p faults into every subsequent run() of this session:
     * replaces config().faults, so compiled mappings degrade around the
     * sampled fault map (stuck cells/columns, killed tiles, wear).
     * Distinct fault configs are distinct cache keys — switching fault
     * rates never aliases a healthy compiled mapping. Not thread-safe
     * against concurrent run() calls; configure before handing the
     * session out.
     */
    SimulationSession &withFaults(const FaultConfig &faults);

    /**
     * Simulate and audit @p model, returning the verdict instead of
     * throwing — for tooling that wants the full finding list. Always
     * audits (every check on), regardless of auditWith(). The audited
     * report lands in @p report when non-null.
     */
    AuditVerdict audit(const GanModel &model, int iterations = 1,
                       TrainingReport *report = nullptr) const;

    /**
     * Attach a metrics registry: every subsequent run() accumulates
     * sim-time telemetry (sim.*, ic.*, ctrl.* — see docs/INTERNALS.md)
     * into it. Pass null to detach. A default-constructed registry is
     * created when called with no argument. The registry may be shared
     * across sessions and threads; sim-time metrics only use integer
     * instruments, so totals are independent of run interleaving. Not
     * thread-safe against concurrent run() calls; configure before
     * handing the session out.
     */
    SimulationSession &withTelemetry(
        std::shared_ptr<MetricsRegistry> registry =
            std::make_shared<MetricsRegistry>());

    /** The attached metrics registry (null when telemetry is off). */
    const std::shared_ptr<MetricsRegistry> &telemetry() const
    {
        return telemetry_;
    }

    /**
     * Attach a flight recorder: every subsequent run() executes under
     * a root "run" span (trace id from allocateTraceId(), so session
     * traces never collide with sweep-point traces in a shared
     * recorder) with compile/simulate/audit stage children recorded
     * into the recorder's main-thread ring. Pass null to detach.
     *
     * NOT thread-safe against concurrent run() calls: the main ring is
     * single-writer, and two threads running one traced session would
     * both record into it. Trace single-threaded sessions, or give
     * each thread its own session + recorder; parallel grids should
     * use ExperimentSweep::withTracing (per-lane rings) instead.
     */
    SimulationSession &withTracing(
        std::shared_ptr<FlightRecorder> recorder =
            std::make_shared<FlightRecorder>());

    /** The attached flight recorder (null when tracing is off). */
    const std::shared_ptr<FlightRecorder> &recorder() const
    {
        return recorder_;
    }

    /**
     * Record the dependence graph of every subsequent run(): each
     * report comes back with report.critpath set — the execution
     * record, the extracted critical path and everything the what-if
     * estimator (critpath/whatif.hh) needs. Recording never changes
     * simulation results; it adds bounded bookkeeping per task (a
     * noticeable fraction of the lean executor's ~80ns/task — the
     * fig19 critpath guard fails check.sh if the ratio regresses more
     * than 5 points past the committed baseline). Not thread-safe
     * against concurrent run() calls; configure before handing the
     * session out.
     */
    SimulationSession &withCriticalPath(bool enabled = true);

    const AcceleratorConfig &config() const { return config_; }

    /** @name Compile-cache observability (exact counters) */
    ///@{
    std::uint64_t cacheHits() const { return cache_->hits(); }
    std::uint64_t cacheMisses() const { return cache_->misses(); }
    const std::shared_ptr<CompiledModelCache> &cache() const
    {
        return cache_;
    }
    ///@}

  private:
    /** Simulate, and audit under @p options when enabled. */
    TrainingReport runImpl(const GanModel &model, int iterations,
                           const AuditOptions &options,
                           AuditVerdict *verdict) const;

    AcceleratorConfig config_;
    std::shared_ptr<CompiledModelCache> cache_;
    AuditOptions audit_;
    std::shared_ptr<MetricsRegistry> telemetry_;
    std::shared_ptr<FlightRecorder> recorder_;
    bool critpath_ = false;
};

/**
 * Convenience one-shot: compile @p model for @p config and simulate
 * @p iterations training iterations.
 *
 * @deprecated Thin forwarding wrapper kept for existing callers; it
 * constructs a throwaway session per call, so repeated invocations
 * recompile the model every time. New code should hold a
 * SimulationSession (or an ExperimentSweep for grids) instead.
 */
TrainingReport simulateTraining(const GanModel &model,
                                const AcceleratorConfig &config,
                                int iterations = 1);

} // namespace lergan

#endif // LERGAN_CORE_API_HH
