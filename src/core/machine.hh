/**
 * @file
 * Hardware instantiation: the CU pair, its resources, and routing.
 *
 * A Machine owns the topology (six banks as two 3DCUs or six plain
 * H-tree banks on a bus), the FIFO resource pool (wires, switches, tile
 * compute pipelines) and a route cache. The accelerator builds task
 * graphs against it.
 */

#ifndef LERGAN_CORE_MACHINE_HH
#define LERGAN_CORE_MACHINE_HH

#include <map>
#include <vector>

#include "core/config.hh"
#include "interconnect/three_d.hh"
#include "sim/resource.hh"

namespace lergan {

/** The instantiated CU pair. */
class Machine
{
  public:
    explicit Machine(const AcceleratorConfig &config);

    Topology &topo() { return topo_; }
    const Topology &topo() const { return topo_; }
    ResourcePool &pool() { return pool_; }
    const ResourcePool &pool() const { return pool_; }

    /** Bank handles, 0..5 (Fig. 13 roles B1..B6). */
    const HTreeBank &bank(int index) const { return banks_[index]; }

    /** Compute-pipeline resource of one tile. */
    std::size_t
    tileComputeRes(int bank, int tile) const
    {
        return tileCompute_[bank][tile];
    }

    /** The shared bus node id. */
    int busNode() const { return busNode_; }

    /**
     * Cached route between two tiles (possibly in different banks).
     * In Cmode the added 3D wires are usable; Smode restricts to the
     * original H-tree + bus wiring.
     */
    const Route &routeTiles(int bank_a, int tile_a, int bank_b, int tile_b,
                            bool cmode);

    /** Area accounting of the interconnect (Sec. VI-E overhead). */
    AreaModel area() const;

    /** Reset all resources for a fresh simulation run. */
    void resetResources() { pool_.resetAll(); }

  private:
    AcceleratorConfig config_;
    Topology topo_;
    ResourcePool pool_;
    std::vector<HTreeBank> banks_;
    std::vector<std::vector<std::size_t>> tileCompute_;
    int busNode_ = -1;
    std::map<std::tuple<int, int, int, int, bool>, Route> routeCache_;
};

} // namespace lergan

#endif // LERGAN_CORE_MACHINE_HH
