/**
 * @file
 * Memory-controller finite state machine (paper Sec. V).
 *
 * The controller tracks per-bank modes (Smode = plain memory, Cmode =
 * computing with reconfigurable wiring) and sequences one training
 * iteration through the paper's Fig. 13 script:
 *
 *   TrainDisc : banks {B1, B4, B5, B6} in Cmode, run G->, D->, D<-, Dw<-.
 *   UpdateDisc: {B4, B5, B6} back to Smode, read grads, write weights.
 *   TrainGen  : all banks Cmode, run G->, D->, D<-, G<-, Gw<-.
 *   UpdateGen : {B1, B2, B3} to Smode, update the generator.
 *
 * Mode flips cost switch-reconfiguration latency/energy; the accelerator
 * inserts them as tasks between phases.
 */

#ifndef LERGAN_CORE_CONTROLLER_HH
#define LERGAN_CORE_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "reram/params.hh"

namespace lergan {

/** Operating mode of one bank. */
enum class BankMode { Smode, Cmode };

/** Controller FSM states, in iteration order. */
enum class CtrlState {
    Idle,
    TrainDisc,
    UpdateDisc,
    TrainGen,
    UpdateGen,
};

/** @return printable state name. */
const char *ctrlStateName(CtrlState state);

/** @return lowercase state key for telemetry ("train_disc"). */
const char *ctrlStateMetricKey(CtrlState state);

/** One mode flip the accelerator must charge. */
struct ModeSwitch {
    int bank;
    BankMode to;
};

/**
 * The memory controller's data-mapping / switch-configuration FSM.
 *
 * Bank numbering follows Fig. 13: 0..2 = generator CU (B1..B3),
 * 3..5 = discriminator CU (B4..B6).
 */
class MemoryController
{
  public:
    static constexpr int kNumBanks = 6; ///< banks per CU pair

    /** @param cu_pairs number of CU pairs under management. */
    explicit MemoryController(const ReRamParams &params, int cu_pairs = 1);

    /** Total banks managed (6 per pair). */
    int numBanks() const { return static_cast<int>(modes_.size()); }

    CtrlState state() const { return state_; }
    BankMode mode(int bank) const;

    /**
     * Advance to the next state of the iteration script.
     *
     * @return the mode switches this transition performs; the caller
     * turns them into reconfiguration tasks. Advancing past UpdateGen
     * wraps to TrainDisc (the next iteration).
     */
    std::vector<ModeSwitch> advance();

    /** Reset to Idle with every bank in Smode. */
    void reset();

    /** Reconfiguration cost of one mode switch. */
    PicoSeconds switchTime() const;
    PicoJoules switchEnergy() const;

    /** Total mode switches performed since reset. */
    std::uint64_t switchCount() const { return switchCount_; }

  private:
    /** Apply a per-pair target pattern to every pair, recording flips. */
    std::vector<ModeSwitch> applyModes(const std::array<BankMode, 6> &target);

    ReRamParams params_;
    CtrlState state_ = CtrlState::Idle;
    /** Mode of every managed bank (6 per pair). */
    std::vector<BankMode> modes_;
    std::uint64_t switchCount_ = 0;
};

} // namespace lergan

#endif // LERGAN_CORE_CONTROLLER_HH
