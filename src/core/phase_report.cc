#include "core/phase_report.hh"

#include <algorithm>
#include <iomanip>
#include <map>

#include "critpath/critpath.hh"

namespace lergan {

std::vector<PhaseTime>
phaseTimes(const Tracer &tracer)
{
    // Labels classify into the same phase families the critical-path
    // rollups use (taskPhaseOf), so both reports bucket identically.
    std::map<std::string, PhaseTime> families;
    for (const TraceEvent &event : tracer.events()) {
        PhaseTime &family = families[taskPhaseOf(event.label)];
        if (family.tasks == 0) {
            family.firstStart = event.start;
            family.lastEnd = event.end;
        } else {
            family.firstStart = std::min(family.firstStart, event.start);
            family.lastEnd = std::max(family.lastEnd, event.end);
        }
        family.busy += event.end - event.start;
        ++family.tasks;
    }
    std::vector<PhaseTime> result;
    for (auto &[name, family] : families) {
        family.name = name;
        result.push_back(family);
    }
    std::sort(result.begin(), result.end(),
              [](const PhaseTime &a, const PhaseTime &b) {
                  return a.firstStart < b.firstStart;
              });
    return result;
}

void
printPhaseTimes(std::ostream &os, const Tracer &tracer,
                PicoSeconds makespan)
{
    os << std::left << std::setw(12) << "phase" << std::right
       << std::setw(12) << "window ms" << std::setw(12) << "busy ms"
       << std::setw(10) << "tasks" << std::setw(14) << "span/iter"
       << '\n';
    for (const PhaseTime &phase : phaseTimes(tracer)) {
        os << std::left << std::setw(12) << phase.name << std::right
           << std::fixed << std::setprecision(3) << std::setw(12)
           << psToMs(phase.span()) << std::setw(12)
           << psToMs(phase.busy) << std::setw(10) << phase.tasks
           << std::setw(13) << std::setprecision(1)
           << (makespan ? 100.0 * static_cast<double>(phase.span()) /
                              static_cast<double>(makespan)
                        : 0.0)
           << "%" << '\n';
    }
}

} // namespace lergan
