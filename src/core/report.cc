#include "core/report.hh"

#include <iomanip>

#include "common/json.hh"
#include "critpath/critpath.hh"

namespace lergan {

void
TrainingReport::print(std::ostream &os, bool verbose) const
{
    os << benchmark << " on " << config << ": " << std::fixed
       << std::setprecision(3) << timeMs() << " ms/iter, "
       << pjToMj(totalEnergyPj()) << " mJ/iter, " << crossbarsUsed
       << " crossbars\n";
    if (critpath)
        critpath->path.print(os);
    if (verbose)
        stats.print(os);
}

void
TrainingReport::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.key("benchmark").value(benchmark);
    json.key("config").value(config);
    json.key("ms_per_iteration").value(timeMs());
    json.key("mj_per_iteration").value(pjToMj(totalEnergyPj()));
    json.key("crossbars").value(crossbarsUsed);
    json.key("compile_ms").value(compileMs);
    if (critpath) {
        // Present only when the run recorded — default reports keep
        // their historical shape byte-for-byte.
        const CriticalPath &path = critpath->path;
        json.key("critpath").beginObject();
        json.key("makespan_ms").value(psToMs(path.makespan));
        json.key("links").value(
            static_cast<std::uint64_t>(path.entries.size()));
        json.key("zero_slack_tasks").value(
            static_cast<std::uint64_t>(path.zeroSlackTasks()));
        json.key("by_phase").beginObject();
        for (const auto &[name, time] : path.phaseRollup)
            json.key(name).value(psToMs(time));
        json.endObject();
        json.key("by_resource").beginObject();
        for (const auto &[name, time] : path.resourceRollup)
            json.key(name).value(psToMs(time));
        json.endObject();
        json.endObject();
    }
    json.key("stats").beginObject();
    for (const auto &[name, value] : stats)
        json.key(name).value(value);
    json.endObject();
    json.endObject();
    os << '\n';
}

} // namespace lergan
