#include "core/report.hh"

#include <iomanip>

#include "common/json.hh"

namespace lergan {

void
TrainingReport::print(std::ostream &os, bool verbose) const
{
    os << benchmark << " on " << config << ": " << std::fixed
       << std::setprecision(3) << timeMs() << " ms/iter, "
       << pjToMj(totalEnergyPj()) << " mJ/iter, " << crossbarsUsed
       << " crossbars\n";
    if (verbose)
        stats.print(os);
}

void
TrainingReport::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.key("benchmark").value(benchmark);
    json.key("config").value(config);
    json.key("ms_per_iteration").value(timeMs());
    json.key("mj_per_iteration").value(pjToMj(totalEnergyPj()));
    json.key("crossbars").value(crossbarsUsed);
    json.key("compile_ms").value(compileMs);
    json.key("stats").beginObject();
    for (const auto &[name, value] : stats)
        json.key(name).value(value);
    json.endObject();
    json.endObject();
    os << '\n';
}

} // namespace lergan
