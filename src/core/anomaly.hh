/**
 * @file
 * Slow-point anomaly report: after a traced sweep, explain the points
 * that deserve attention — failures, dirty audits, and points beyond a
 * host-time quantile — from the flight recorder, without rerunning.
 *
 * The report is a post-mortem over host observations, so it is never
 * part of a determinism golden: which points exceed the quantile (and
 * every printed duration) depends on the machine and the run. What it
 * prints per point — the span tree and the critical-path rollup — is
 * the causal record ISSUE 10 is about: queue wait, compile, cache
 * outcome, simulate, audit, all attributed and timed.
 */

#ifndef LERGAN_CORE_ANOMALY_HH
#define LERGAN_CORE_ANOMALY_HH

#include <cstddef>
#include <ostream>
#include <vector>

#include "core/sweep.hh"
#include "telemetry/flight_recorder.hh"

namespace lergan {

/** Tuning of writeAnomalyReport(). */
struct AnomalyOptions {
    /**
     * Host-ms quantile (nearest-rank over the successful points'
     * PointTelemetry::hostMs) beyond which a point is anomalous.
     * Failed and audit-dirty points are always anomalous.
     */
    double quantile = 0.9;
    /** Cap on fully-printed points (the rest are counted, not shown). */
    std::size_t maxPoints = 8;
};

/**
 * Write the anomaly report of a traced sweep run: for every failed,
 * audit-dirty, or slower-than-quantile point, the point's span tree
 * (from @p recorder, trace id = point index + 1) and its critical-path
 * rollup when the sweep recorded one. Requires the run to have used
 * RunOptions::pointTelemetry (host times are the quantile's input);
 * points without telemetry can still be reported as failed/dirty.
 * Notes ring eviction (recorder.dropped()) so a missing tree is
 * explainable. Returns the number of anomalous points found.
 */
std::size_t writeAnomalyReport(std::ostream &os,
                               const std::vector<SweepResult> &results,
                               const FlightRecorder &recorder,
                               const AnomalyOptions &options = {});

} // namespace lergan

#endif // LERGAN_CORE_ANOMALY_HH
