/**
 * @file
 * Accelerator configuration knobs.
 *
 * Every evaluated configuration in the paper's Sec. VI is a point in this
 * space: LerGAN-low/middle/high are (ThreeD, Zfdr, degree), the "-NS"
 * variants normalize CArray space, PRIME is (HTree, Normal), and the
 * Fig. 16-18 ablations toggle connection/reshape/duplication separately.
 */

#ifndef LERGAN_CORE_CONFIG_HH
#define LERGAN_CORE_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "nn/training.hh"
#include "reram/params.hh"
#include "zfdr/replica.hh"

namespace lergan {

/** Interconnect flavor. */
enum class Connection {
    HTree,  ///< plain banks on a shared bus (PRIME / PipeLayer style)
    ThreeD, ///< 3DCU pairs with horizontal/vertical/bypass wiring
};

/** @return "2D" or "3D". */
const char *connectionName(Connection connection);

/** Data reshaping scheme. */
enum class ReshapeMode {
    Zfdr,   ///< zero-free reshaping (the paper's contribution)
    Normal, ///< dense kernels; zeros stored, transferred and multiplied
};

/** @return "ZFDR" or "NR". */
const char *reshapeModeName(ReshapeMode mode);

/** One accelerator configuration. */
struct AcceleratorConfig {
    Connection connection = Connection::ThreeD;
    ReshapeMode reshape = ReshapeMode::Zfdr;
    /** Duplication degree (Table III / Eq. 14). */
    ReplicaDegree degree = ReplicaDegree::Low;
    /** false forces single copies everywhere (the "no duplication"
     *  ablation of Fig. 17/18). */
    bool duplicate = true;
    /**
     * Normalized space (the paper's "NS"): cap this configuration's
     * CArray crossbar budget to @ref spaceBudgetCrossbars, shrinking
     * duplication until it fits. Used to grant PRIME the same CArray
     * space as LerGAN (Fig. 16/19/20) and vice versa.
     */
    bool normalizedSpace = false;
    std::uint64_t spaceBudgetCrossbars = 0;
    /**
     * Number of 3DCU pairs the GAN maps onto (Sec. IV-B: "we map
     * generator to one or several 3DCUs and map discriminator to
     * corresponding 3DCUs"). Layers are split block-wise across pairs;
     * big GANs need >1 pair to avoid oversubscribing the banks.
     */
    int cuPairs = 1;
    /** Training minibatch size (paper: 64). */
    int batchSize = 64;
    /** Device/bank/tile parameters. */
    ReRamParams reram;
    /**
     * Heterogeneous acceleration (Sec. V: "heterogeneous levels of
     * acceleration according to demands"): per-phase duplication-degree
     * overrides. Phases not listed use @ref degree.
     */
    std::map<Phase, ReplicaDegree> phaseDegrees;
    /**
     * @name 3D-connection ablation switches
     * Disable one family of added wires to measure its contribution
     * (bench/ablation_interconnect). Ignored for HTree connections.
     */
    ///@{
    bool horizontalWires = true;
    bool verticalWires = true;
    ///@}

    /**
     * Fault injection: (bank, tile) pairs the compiler must not place
     * crossbars on (defective or worn-out tiles).
     */
    std::vector<std::pair<int, int>> failedTiles;

    /** Effective duplication degree for @p phase. */
    ReplicaDegree degreeFor(Phase phase) const;

    /**
     * Throw std::invalid_argument for unusable user-provided values
     * (non-positive batch size or CU-pair count, a normalized-space
     * request without a budget). Sessions and sweeps call this at the
     * API boundary so a bad configuration fails its own experiment
     * point instead of panicking the whole process.
     */
    void checkUsable() const;

    /** Short label for reports ("3D+ZFDR(low)"). */
    std::string label() const;

    /** The paper's named configurations. */
    static AcceleratorConfig lerGan(ReplicaDegree degree);
    static AcceleratorConfig prime();
};

} // namespace lergan

#endif // LERGAN_CORE_CONFIG_HH
