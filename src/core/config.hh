/**
 * @file
 * Accelerator configuration knobs.
 *
 * Every evaluated configuration in the paper's Sec. VI is a point in this
 * space: LerGAN-low/middle/high are (ThreeD, Zfdr, degree), the "-NS"
 * variants normalize CArray space, PRIME is (HTree, Normal), and the
 * Fig. 16-18 ablations toggle connection/reshape/duplication separately.
 */

#ifndef LERGAN_CORE_CONFIG_HH
#define LERGAN_CORE_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "nn/training.hh"
#include "reram/params.hh"
#include "zfdr/replica.hh"

namespace lergan {

/** Interconnect flavor. */
enum class Connection {
    HTree,  ///< plain banks on a shared bus (PRIME / PipeLayer style)
    ThreeD, ///< 3DCU pairs with horizontal/vertical/bypass wiring
};

/** @return "2D" or "3D". */
const char *connectionName(Connection connection);

/** Data reshaping scheme. */
enum class ReshapeMode {
    Zfdr,   ///< zero-free reshaping (the paper's contribution)
    Normal, ///< dense kernels; zeros stored, transferred and multiplied
};

/** @return "ZFDR" or "NR". */
const char *reshapeModeName(ReshapeMode mode);

/**
 * Seeded ReRAM fault-injection and variation knobs.
 *
 * The fault layer (src/faults) expands these rates into a deterministic
 * per-tile FaultMap at compile time: stuck-at cells and stuck-at
 * columns disable individual crossbars (the tile survives with reduced
 * capacity), tile-kill faults and wear-out remove whole tiles, and the
 * allocator reroutes the mapping around the dead hardware. The same
 * seed always produces the byte-identical map, so every degraded run is
 * reproducible and Monte Carlo trials are just a seed sweep.
 */
struct FaultConfig {
    /** Base RNG seed; trial t of a Monte Carlo sweep mixes in t. */
    std::uint64_t seed = 0;
    /** Per-cell stuck-at fault probability (LRS or HRS). */
    double cellStuckRate = 0.0;
    /** Of the stuck cells, the share stuck at LRS (rest are HRS). */
    double stuckAtLrsShare = 0.5;
    /** Per-bitline-column stuck-at fault probability. */
    double columnStuckRate = 0.0;
    /** Per-tile hard-kill probability (peripheral/driver defects). */
    double tileKillRate = 0.0;
    /** Faulty-cell fraction one crossbar tolerates before it is dead. */
    double cellTolerance = 0.02;
    /** Dead-column fraction one crossbar tolerates before it is dead. */
    double columnTolerance = 0.05;
    /** Dead-crossbar fraction that retires the whole tile. */
    double tileDeadCrossbarTolerance = 0.5;
    /**
     * Wear model: training iterations this device already absorbed.
     * Tiles whose hottest cells exceed @ref cellEndurance writes are
     * worn out; the ZFDR replica policy feeds in directly because every
     * stored copy is rewritten on every update (reram/endurance.hh).
     */
    double priorIterations = 0.0;
    /** Write cycles one cell survives (paper Sec. II-A: 1e10..1e12). */
    double cellEndurance = 1e10;

    /** True when any fault class can actually trigger. */
    bool
    any() const
    {
        return cellStuckRate > 0.0 || columnStuckRate > 0.0 ||
               tileKillRate > 0.0 || priorIterations > 0.0;
    }

    /** Throw std::invalid_argument for out-of-range user values. */
    void checkUsable() const;
};

/** One accelerator configuration. */
struct AcceleratorConfig {
    Connection connection = Connection::ThreeD;
    ReshapeMode reshape = ReshapeMode::Zfdr;
    /** Duplication degree (Table III / Eq. 14). */
    ReplicaDegree degree = ReplicaDegree::Low;
    /** false forces single copies everywhere (the "no duplication"
     *  ablation of Fig. 17/18). */
    bool duplicate = true;
    /**
     * Normalized space (the paper's "NS"): cap this configuration's
     * CArray crossbar budget to @ref spaceBudgetCrossbars, shrinking
     * duplication until it fits. Used to grant PRIME the same CArray
     * space as LerGAN (Fig. 16/19/20) and vice versa.
     */
    bool normalizedSpace = false;
    std::uint64_t spaceBudgetCrossbars = 0;
    /**
     * Number of 3DCU pairs the GAN maps onto (Sec. IV-B: "we map
     * generator to one or several 3DCUs and map discriminator to
     * corresponding 3DCUs"). Layers are split block-wise across pairs;
     * big GANs need >1 pair to avoid oversubscribing the banks.
     */
    int cuPairs = 1;
    /** Training minibatch size (paper: 64). */
    int batchSize = 64;
    /** Device/bank/tile parameters. */
    ReRamParams reram;
    /**
     * Heterogeneous acceleration (Sec. V: "heterogeneous levels of
     * acceleration according to demands"): per-phase duplication-degree
     * overrides. Phases not listed use @ref degree.
     */
    std::map<Phase, ReplicaDegree> phaseDegrees;
    /**
     * @name 3D-connection ablation switches
     * Disable one family of added wires to measure its contribution
     * (bench/ablation_interconnect). Ignored for HTree connections.
     */
    ///@{
    bool horizontalWires = true;
    bool verticalWires = true;
    ///@}

    /**
     * Fault injection: (bank, tile) pairs the compiler must not place
     * crossbars on (defective or worn-out tiles).
     */
    std::vector<std::pair<int, int>> failedTiles;

    /**
     * Seeded fault/variation injection. With any rate non-zero the
     * compiler materializes a deterministic FaultMap from the seed,
     * kills/shrinks the affected tiles, reroutes the mapping and
     * records the degradation in CompiledGan::faultImpact.
     */
    FaultConfig faults;

    /** Effective duplication degree for @p phase. */
    ReplicaDegree degreeFor(Phase phase) const;

    /**
     * Throw std::invalid_argument for unusable user-provided values
     * (non-positive batch size or CU-pair count, a normalized-space
     * request without a budget). Sessions and sweeps call this at the
     * API boundary so a bad configuration fails its own experiment
     * point instead of panicking the whole process.
     */
    void checkUsable() const;

    /** Short label for reports ("3D+ZFDR(low)"). */
    std::string label() const;

    /** The paper's named configurations. */
    static AcceleratorConfig lerGan(ReplicaDegree degree);
    static AcceleratorConfig prime();
};

} // namespace lergan

#endif // LERGAN_CORE_CONFIG_HH
