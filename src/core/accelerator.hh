/**
 * @file
 * The LerGAN accelerator model (paper Sec. V, evaluated in Sec. VI).
 *
 * Combines the compiled mapping, the machine (CU pair + resources) and
 * the memory-controller FSM, lowers one full training iteration
 * (discriminator step then generator step, Fig. 13a/13b) into a task DAG
 * and executes it on the event simulator.
 *
 * The same class simulates every PIM configuration of the evaluation:
 * LerGAN is (3D, ZFDR); the PRIME baseline is (H-tree, normal reshape);
 * the Fig. 16-18 ablations toggle the axes independently.
 */

#ifndef LERGAN_CORE_ACCELERATOR_HH
#define LERGAN_CORE_ACCELERATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/compiler.hh"
#include "core/controller.hh"
#include "core/machine.hh"
#include "core/report.hh"
#include "reram/tile.hh"
#include "sim/task_graph.hh"
#include "sim/trace.hh"
#include "telemetry/metrics.hh"

namespace lergan {

/**
 * One training iteration, compiled to a replayable template.
 *
 * GAN training iterations are structurally identical, so the task DAG,
 * the schedule-independent build-time energies and the build-time
 * metric deltas of one iteration are a pure function of (model,
 * config): build them once, replay them for every run of that pair.
 * The frozen graph is immutable and safe to execute concurrently; the
 * per-run mutable state lives in the executing accelerator.
 *
 * Resource ids inside the graph index into the machine's pool, which is
 * constructed deterministically from the configuration — a template
 * built by one accelerator is valid for any accelerator of the same
 * (model, config) pair, which is what makes a shared cache sound
 * (keyed by pairFingerprint, see core/sweep.hh).
 */
struct IterationTemplate {
    TaskGraph graph;
    /** Schedule-independent energies accrued at build time. */
    StatSet buildEnergy;
    /** Counter increments the build applies to a metrics registry
     *  (controller transitions, per-link flits), name-ordered. */
    std::vector<std::pair<std::string, std::uint64_t>> counterDeltas;
    /** Controller advances per iteration (replayed for FSM fidelity). */
    int controllerAdvances = 0;
};

/** A GAN mapped onto one PIM configuration, ready to simulate. */
class LerGanAccelerator
{
  public:
    /** Tag: the compiled mapping already passed validateMapping. */
    struct Prevalidated {};

    /**
     * Compile @p model for @p config and get ready to simulate. Pass a
     * cached @p compiled (e.g. from a CompiledModelCache) to skip the
     * compile; it must be the result of compileGan(model, config).
     *
     * The compiled mapping is immutable and may be shared by several
     * accelerators simulating concurrently on different threads; all
     * mutable simulation state (machine, resources, controller, route
     * cache) is per-accelerator.
     */
    LerGanAccelerator(const GanModel &model, AcceleratorConfig config,
                      std::shared_ptr<const CompiledGan> compiled = nullptr);

    /**
     * Same, but skips re-validating @p compiled: for callers that hold
     * a mapping known to have passed validateMapping already (e.g. a
     * CompiledModelCache filled through compileGanValidated).
     */
    LerGanAccelerator(const GanModel &model, AcceleratorConfig config,
                      std::shared_ptr<const CompiledGan> compiled,
                      Prevalidated);

    /** Simulate one full training iteration. */
    TrainingReport trainIteration();

    /**
     * Simulate one iteration while recording every task's execution
     * interval into @p tracer (exportable as a Chrome trace).
     */
    TrainingReport trainIterationTraced(Tracer &tracer);

    /** Names of all resources, indexed by resource id (trace lanes). */
    std::vector<std::string> resourceNames() const;

    /**
     * Simulate @p n iterations (the paper times ten and averages).
     * Iterations are identical in steady state, so this simulates one
     * and reports per-iteration numbers with counters scaled by @p n in
     * "total.*" keys.
     */
    TrainingReport trainIterations(int n);

    /**
     * trainIterations() recording the simulated iteration's task
     * intervals into @p tracer (cleared first; null records nothing) —
     * the variant the audit layer uses to cross-check phase times
     * against the event-queue makespan. When @p metrics is given the
     * run also accumulates sim-time telemetry (queue depth, per-link
     * flit traffic, controller transitions, resource contention) into
     * the registry; only integer instruments are used, so totals are
     * independent of how many runs share the registry concurrently.
     */
    TrainingReport trainIterations(int n, Tracer *tracer,
                                   MetricsRegistry *metrics = nullptr);

    /**
     * trainIterations() replaying @p tmpl instead of rebuilding the
     * iteration DAG — the fast path of repeated sweeps. @p tmpl must
     * come from makeIterationTemplate() of an accelerator with the same
     * (model, config) pair; results, traces and metrics are identical
     * to the rebuild path by construction (the rebuild path itself
     * builds a template and replays it once).
     */
    TrainingReport trainIterations(int n, Tracer *tracer,
                                   MetricsRegistry *metrics,
                                   const IterationTemplate *tmpl);

    /**
     * trainIterations() additionally filling @p record with the
     * execution's dependence record (binding predecessors, reservation
     * order — sim/exec_record.hh) for critical-path analysis. Recording
     * never changes results, traces or metrics.
     */
    TrainingReport trainIterations(int n, Tracer *tracer,
                                   MetricsRegistry *metrics,
                                   const IterationTemplate *tmpl,
                                   ExecRecord *record);

    /**
     * The report trainIterations(n, ..., tmpl) would produce, with the
     * event simulation replaced by the analytic makespan estimate
     * @p per_iteration (e.g. a makespanBounds() upper bound). All
     * energies are build-time facts of the template, so they are exact;
     * only the timing is an estimate. The report carries
     * "critpath.estimated" = 1 so exports can tell estimated points
     * from simulated ones. Bound-pruned sweep points use this.
     */
    TrainingReport estimateIterations(int n, const IterationTemplate *tmpl,
                                      PicoSeconds per_iteration);

    /**
     * Compile one training iteration into a replayable template (see
     * IterationTemplate). Pure with respect to simulation results: the
     * machine's mutable state is untouched except the route cache and
     * the controller (which every run resets anyway).
     */
    std::shared_ptr<const IterationTemplate> makeIterationTemplate();

    /**
     * Execute with @p scratch instead of the accelerator's own
     * buffers (nullptr reverts). Sweep workers point every short-lived
     * accelerator they construct at their lane's long-lived arena, so
     * steady-state sweeps reuse the event calendar and counter buffers
     * across points instead of reallocating per accelerator. The
     * scratch must outlive the runs and must not be shared with a
     * concurrent execution.
     */
    void useScratch(ExecScratch *scratch) { externalScratch_ = scratch; }

    const CompiledGan &compiled() const { return *compiled_; }
    const GanModel &model() const { return model_; }
    const AcceleratorConfig &config() const { return config_; }
    Machine &machine() { return machine_; }

  private:
    /** Shared implementation of the (traced) iteration runs. */
    TrainingReport trainIterationImpl(Tracer *tracer,
                                      MetricsRegistry *metrics = nullptr,
                                      const IterationTemplate *tmpl =
                                          nullptr,
                                      ExecRecord *record = nullptr);

    /** Assemble the per-iteration report from a template plus the
     *  (real or estimated) timing outcome. */
    TrainingReport assembleReport(const IterationTemplate &tmpl,
                                  PicoSeconds iteration_time,
                                  const StatSet &exec_stats) const;

    GanModel model_;
    AcceleratorConfig config_;
    std::shared_ptr<const CompiledGan> compiled_;
    Machine machine_;
    MemoryController controller_;
    TileModel tileModel_;
    /** Host-CPU resource (update arithmetic serializes here). */
    std::size_t cpuRes_;
    /** Reusable executor buffers (near-zero allocation on replay). */
    ExecScratch scratch_;
    /** When set, runs use this arena instead of scratch_. */
    ExecScratch *externalScratch_ = nullptr;
};

} // namespace lergan

#endif // LERGAN_CORE_ACCELERATOR_HH
