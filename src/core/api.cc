#include "core/api.hh"

namespace lergan {

SimulationSession::SimulationSession(AcceleratorConfig config)
    : SimulationSession(std::move(config),
                        std::make_shared<CompiledModelCache>())
{
}

SimulationSession::SimulationSession(
    AcceleratorConfig config, std::shared_ptr<CompiledModelCache> cache)
    : config_(std::move(config)), cache_(std::move(cache))
{
}

TrainingReport
SimulationSession::run(const GanModel &model, int iterations) const
{
    config_.checkUsable();
    std::shared_ptr<const CompiledGan> compiled =
        cache_->get(model, config_, compileGan);
    LerGanAccelerator accelerator(model, config_, std::move(compiled));
    return accelerator.trainIterations(iterations);
}

TrainingReport
simulateTraining(const GanModel &model, const AcceleratorConfig &config,
                 int iterations)
{
    return SimulationSession(config).run(model, iterations);
}

} // namespace lergan
