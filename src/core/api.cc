#include "core/api.hh"

#include <optional>

#include "core/validate.hh"
#include "critpath/critpath.hh"
#include "sim/trace.hh"
#include "telemetry/tracing.hh"

namespace lergan {

SimulationSession::SimulationSession(AcceleratorConfig config)
    : SimulationSession(std::move(config),
                        std::make_shared<CompiledModelCache>())
{
}

SimulationSession::SimulationSession(
    AcceleratorConfig config, std::shared_ptr<CompiledModelCache> cache)
    : config_(std::move(config)), cache_(std::move(cache))
{
}

SimulationSession &
SimulationSession::auditWith(AuditOptions options)
{
    audit_ = std::move(options);
    audit_.enabled = true;
    return *this;
}

SimulationSession &
SimulationSession::withFaults(const FaultConfig &faults)
{
    faults.checkUsable();
    config_.faults = faults;
    return *this;
}

SimulationSession &
SimulationSession::withTelemetry(std::shared_ptr<MetricsRegistry> registry)
{
    telemetry_ = std::move(registry);
    return *this;
}

SimulationSession &
SimulationSession::withTracing(std::shared_ptr<FlightRecorder> recorder)
{
    recorder_ = std::move(recorder);
    return *this;
}

SimulationSession &
SimulationSession::withCriticalPath(bool enabled)
{
    critpath_ = enabled;
    return *this;
}

TrainingReport
SimulationSession::runImpl(const GanModel &model, int iterations,
                           const AuditOptions &options,
                           AuditVerdict *verdict) const
{
    config_.checkUsable();
    // With a recorder attached, the whole run executes under a root
    // "run" span on the main-thread ring; the stage spans below are
    // inert (one thread-local load each) when untraced.
    std::optional<MainLaneBinding> bind;
    std::optional<Span> root;
    if (recorder_) {
        bind.emplace(*recorder_);
        root.emplace(recorder_->allocateTraceId(), "run");
        root->attr("benchmark", model.name);
        root->attr("iterations", static_cast<std::int64_t>(iterations));
    }
    // compileGan carries its own "compile" profiler scope; a cache hit
    // here costs only the lookup.
    bool cache_hit = false;
    std::shared_ptr<const CompiledGan> compiled;
    {
        Span span("compile");
        compiled =
            cache_->get(model, config_, compileGanValidated, &cache_hit);
        span.attr("cache_hit", cache_hit);
    }
    MetricsRegistry *metrics = telemetry_.get();
    LerGanAccelerator accelerator(model, config_, std::move(compiled));
    if (!options.enabled && !critpath_) {
        Span span("simulate");
        return accelerator.trainIterations(iterations, nullptr, metrics);
    }

    Tracer tracer;
    Tracer *trace =
        options.enabled && options.timing ? &tracer : nullptr;
    TrainingReport report;
    if (critpath_) {
        // Recording needs the template to outlive the run: the record
        // is only meaningful against the graph it was taken from, so
        // the RecordedRun shares ownership of it (aliasing pointer).
        std::shared_ptr<const IterationTemplate> tmpl =
            accelerator.makeIterationTemplate();
        ExecRecord record;
        {
            Span span("simulate");
            report = accelerator.trainIterations(
                iterations, trace, metrics, tmpl.get(), &record);
        }
        report.critpath = makeRecordedRun(
            std::shared_ptr<const TaskGraph>(tmpl, &tmpl->graph),
            accelerator.resourceNames(), std::move(record));
    } else {
        Span span("simulate");
        report = accelerator.trainIterations(iterations, trace, metrics);
    }
    if (options.enabled) {
        Span span("audit");
        const AuditContext context(options);
        AuditVerdict result = context.run({&model, &config_,
                                           &accelerator.compiled(),
                                           &report, trace});
        span.attr("clean", result.ok());
        if (verdict)
            *verdict = std::move(result);
        else if (!result.ok())
            throw AuditError(std::move(result));
    }
    return report;
}

TrainingReport
SimulationSession::run(const GanModel &model, int iterations) const
{
    return runImpl(model, iterations, audit_, nullptr);
}

AuditVerdict
SimulationSession::audit(const GanModel &model, int iterations,
                         TrainingReport *report) const
{
    AuditVerdict verdict;
    TrainingReport audited =
        runImpl(model, iterations, AuditOptions::full(), &verdict);
    if (report)
        *report = std::move(audited);
    return verdict;
}

TrainingReport
simulateTraining(const GanModel &model, const AcceleratorConfig &config,
                 int iterations)
{
    return SimulationSession(config).run(model, iterations);
}

} // namespace lergan
