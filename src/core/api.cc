#include "core/api.hh"

namespace lergan {

TrainingReport
simulateTraining(const GanModel &model, const AcceleratorConfig &config,
                 int iterations)
{
    LerGanAccelerator accelerator(model, config);
    return accelerator.trainIterations(iterations);
}

} // namespace lergan
