/**
 * @file
 * Sweep-result exporters, decoupled from the runner.
 *
 * Output is a pure function of the result vector: a grid simulated on
 * one worker and on N workers serializes byte-identically.
 */

#ifndef LERGAN_CORE_SWEEP_IO_HH
#define LERGAN_CORE_SWEEP_IO_HH

#include <ostream>
#include <vector>

#include "core/sweep.hh"

namespace lergan {

/**
 * Write results as a JSON array of objects. A failed point carries
 * "failed":true plus its "error" message instead of the metric keys.
 * Audited points (ExperimentSweep::auditWith) additionally carry an
 * "audit" object with the verdict and any failed invariants.
 */
void writeSweepJson(std::ostream &os,
                    const std::vector<SweepResult> &results);

/**
 * Write results as CSV (one row per point, stats flattened), fields
 * quoted per RFC 4180 where needed. Failed points keep their row —
 * benchmark and config identify them — with every metric cell empty
 * and the exception message in the trailing "error" column.
 */
void writeSweepCsv(std::ostream &os,
                   const std::vector<SweepResult> &results);

} // namespace lergan

#endif // LERGAN_CORE_SWEEP_IO_HH
