/**
 * @file
 * Sweep-result exporters, decoupled from the runner.
 *
 * Output is a pure function of the result vector: a grid simulated on
 * one worker and on N workers serializes byte-identically.
 */

#ifndef LERGAN_CORE_SWEEP_IO_HH
#define LERGAN_CORE_SWEEP_IO_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/sweep.hh"

namespace lergan {

/**
 * Whole-run host observations attached to a telemetry-enabled export
 * (bench --telemetry). Never part of a determinism golden.
 */
struct SweepTelemetrySummary {
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** Wall-clock time of the whole sweep run. */
    double wallMs = 0.0;
};

/**
 * Write results as a JSON array of objects. A failed point carries
 * "failed":true plus its "error" message instead of the metric keys.
 * Audited points (ExperimentSweep::auditWith) additionally carry an
 * "audit" object with the verdict and any failed invariants.
 *
 * With a @p summary the export becomes an object — {"points":[...],
 * "cache":{"hits","misses"},"wall_ms"} — and points that ran with
 * RunOptions::pointTelemetry carry a per-point "telemetry" object
 * ("cache_hit", "host_ms"). Without a summary and without point
 * telemetry the output is byte-identical to the historical array shape.
 */
void writeSweepJson(std::ostream &os,
                    const std::vector<SweepResult> &results,
                    const SweepTelemetrySummary *summary = nullptr);

/**
 * Write results as CSV (one row per point, stats flattened), fields
 * quoted per RFC 4180 where needed. Failed points keep their row —
 * benchmark and config identify them — with every metric cell empty
 * and the exception message in the trailing "error" column.
 *
 * When some result ran with RunOptions::pointTelemetry, trailing
 * "cache_hit,host_ms" columns appear; a @p summary adds a final
 * "# cache_hits=... cache_misses=... wall_ms=..." comment line. Both
 * are absent in the default export, keeping its historical shape.
 */
void writeSweepCsv(std::ostream &os,
                   const std::vector<SweepResult> &results,
                   const SweepTelemetrySummary *summary = nullptr);

} // namespace lergan

#endif // LERGAN_CORE_SWEEP_IO_HH
