#include "exec/engine.hh"

#include <exception>
#include <mutex>

#include "exec/thread_pool.hh"

namespace lergan {

std::vector<PointStatus>
runPoints(std::size_t count, unsigned threads,
          const std::function<void(std::size_t)> &body,
          const ProgressFn &onProgress, MetricsRegistry *metrics)
{
    std::vector<PointStatus> statuses(count);
    if (count == 0)
        return statuses;

    ThreadPool pool(threads);
    std::mutex progressMutex;
    std::size_t done = 0;

    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&, i] {
            try {
                body(i);
            } catch (const std::exception &e) {
                statuses[i] = {false, e.what()};
            } catch (...) {
                statuses[i] = {false, "unknown exception"};
            }
            std::lock_guard lock(progressMutex);
            ++done;
            if (onProgress)
                onProgress(done, count);
        });
    }
    pool.drain();
    if (metrics) {
        metrics->gauge("host.pool.threads")
            .set(static_cast<double>(pool.threadCount()));
        metrics->counter("host.pool.tasks.run").add(pool.tasksRun());
        const auto busy = pool.workerBusyNs();
        for (std::size_t w = 0; w < busy.size(); ++w) {
            metrics
                ->gauge("host.pool.worker." + std::to_string(w) +
                        ".busy_ms")
                .set(static_cast<double>(busy[w]) * 1e-6);
        }
    }
    return statuses;
}

} // namespace lergan
