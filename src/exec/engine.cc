#include "exec/engine.hh"

#include <exception>
#include <mutex>

#include "exec/thread_pool.hh"
#include "telemetry/tracing.hh"

namespace lergan {

std::vector<PointStatus>
runPoints(std::size_t count, unsigned threads, const PointBodyFn &body,
          const ProgressFn &onProgress, MetricsRegistry *metrics,
          FlightRecorder *recorder, const PointTraceIdFn &traceId)
{
    std::vector<PointStatus> statuses(count);
    if (count == 0)
        return statuses;

    ThreadPool pool(threads);
    if (recorder)
        recorder->prepareLanes(pool.threadCount());
    // Queue wait is measured from here: by the time the pool starts
    // claiming, every point is conceptually enqueued.
    const std::uint64_t enqueueNs = recorder ? traceNowNs() : 0;

    // Progress state exists only for an installed sink; the no-sink
    // epilogue is lock-free (nothing shared to touch). The done count
    // lives under the mutex because the sink's contract is serialized,
    // monotonic invocations.
    std::mutex progressMutex;
    std::size_t done = 0;

    pool.forEach(count, [&](std::size_t i, std::size_t lane) {
        PointStatus &st = statuses[i];
        const auto guarded = [&] {
            try {
                body(i, lane);
            } catch (const std::exception &e) {
                st.ok = false;
                st.error = e.what();
            } catch (...) {
                st.ok = false;
                st.error = "unknown exception";
            }
        };
        if (recorder) {
            TraceLaneBinding bind(recorder->lane(lane),
                                  static_cast<std::uint32_t>(lane));
            const TraceId trace =
                traceId ? traceId(i) : static_cast<TraceId>(i) + 1;
            st.queueWaitMs =
                static_cast<double>(traceNowNs() - enqueueNs) * 1e-6;
            {
                Span root(trace, "point");
                root.attr("queue_wait_ms", st.queueWaitMs,
                          /*host=*/true);
                guarded();
                if (!st.ok)
                    root.attr("failed", true);
                st.spanCount = root.spansInTrace();
            }
            // The root is recorded now, so a failure dump carries the
            // complete tree (same-thread ring read: always ordered).
            if (!st.ok)
                st.spanDump =
                    formatTraceDump(recorder->lane(lane), trace);
        } else {
            guarded();
        }
        if (onProgress) {
            std::lock_guard lock(progressMutex);
            onProgress(++done, count);
        }
    });
    if (metrics) {
        metrics->gauge("host.pool.threads")
            .set(static_cast<double>(pool.threadCount()));
        metrics->counter("host.pool.tasks.run").add(pool.tasksRun());
        const auto busy = pool.workerBusyNs();
        for (std::size_t w = 0; w < busy.size(); ++w) {
            metrics
                ->gauge("host.pool.worker." + std::to_string(w) +
                        ".busy_ms")
                .set(static_cast<double>(busy[w]) * 1e-6);
        }
    }
    return statuses;
}

} // namespace lergan
