#include "exec/engine.hh"

#include <exception>
#include <mutex>

#include "exec/thread_pool.hh"

namespace lergan {

std::vector<PointStatus>
runPoints(std::size_t count, unsigned threads, const PointBodyFn &body,
          const ProgressFn &onProgress, MetricsRegistry *metrics)
{
    std::vector<PointStatus> statuses(count);
    if (count == 0)
        return statuses;

    ThreadPool pool(threads);
    // Progress state exists only for an installed sink; the no-sink
    // epilogue is lock-free (nothing shared to touch). The done count
    // lives under the mutex because the sink's contract is serialized,
    // monotonic invocations.
    std::mutex progressMutex;
    std::size_t done = 0;

    pool.forEach(count, [&](std::size_t i, std::size_t lane) {
        try {
            body(i, lane);
        } catch (const std::exception &e) {
            statuses[i] = {false, e.what()};
        } catch (...) {
            statuses[i] = {false, "unknown exception"};
        }
        if (onProgress) {
            std::lock_guard lock(progressMutex);
            onProgress(++done, count);
        }
    });
    if (metrics) {
        metrics->gauge("host.pool.threads")
            .set(static_cast<double>(pool.threadCount()));
        metrics->counter("host.pool.tasks.run").add(pool.tasksRun());
        const auto busy = pool.workerBusyNs();
        for (std::size_t w = 0; w < busy.size(); ++w) {
            metrics
                ->gauge("host.pool.worker." + std::to_string(w) +
                        ".busy_ms")
                .set(static_cast<double>(busy[w]) * 1e-6);
        }
    }
    return statuses;
}

} // namespace lergan
