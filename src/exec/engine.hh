/**
 * @file
 * Parallel point-grid execution engine.
 *
 * Runs N independent point bodies on a worker pool with slot-indexed
 * (therefore completion-order-independent) results, per-point error
 * capture and serialized progress reporting. The experiment-sweep
 * runner and any future batch driver build on this layer; the engine
 * itself knows nothing about accelerators or sweeps.
 */

#ifndef LERGAN_EXEC_ENGINE_HH
#define LERGAN_EXEC_ENGINE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace lergan {

/** Progress hook: called as (points done, points total). */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/** Options of one engine-backed run (ExperimentSweep::run). */
struct RunOptions {
    /** Worker threads; 1 runs in submission order, 0 = one per
     *  hardware thread. */
    int threads = 1;
    /** Training iterations to simulate per point. */
    int iterations = 1;
    /**
     * Called after each point completes. Invocations are serialized
     * (never concurrent), but arrive in completion order: only the
     * counts are monotonic, not the identity of the finished point.
     */
    ProgressFn onProgress;
    /**
     * Collect per-point host telemetry (wall time, compile-cache hit)
     * into each result. Off by default: the extra fields change the
     * JSON/CSV exports, and per-point wall times are wall-clock facts
     * that must never enter a determinism golden.
     */
    bool pointTelemetry = false;
};

/** Execution status of one point. */
struct PointStatus {
    bool ok = true;
    /** Exception message when !ok. */
    std::string error;
};

/** Point body: called as (point index, worker lane). The lane is a
 *  dense id in [0, pool width), stable for the body's whole run and
 *  never shared by two concurrent bodies — index per-worker scratch
 *  arenas with it. */
using PointBodyFn = std::function<void(std::size_t, std::size_t)>;

/**
 * Execute @p body(i, lane) for every i in [0, count) on @p threads
 * workers (0 = defaultThreadCount()) and block until all points
 * finished. Points are claimed in chunks off a shared cursor (see
 * ThreadPool::forEach), so the pool's queue lock is touched O(threads)
 * times regardless of the point count.
 *
 * A body that throws marks its own PointStatus failed with the
 * exception message; the other points are unaffected. Statuses are
 * indexed by point, so the result is deterministic regardless of the
 * order in which workers finish.
 *
 * Progress accounting exists only while @p onProgress is installed;
 * without a sink the per-point epilogue takes no lock and touches no
 * shared counter.
 *
 * When @p metrics is given, the pool's host-side stats (worker count,
 * per-worker busy time, tasks run) are recorded after the drain under
 * the "host." prefix — wall-clock facts, never part of goldens.
 */
std::vector<PointStatus> runPoints(std::size_t count, unsigned threads,
                                   const PointBodyFn &body,
                                   const ProgressFn &onProgress = {},
                                   MetricsRegistry *metrics = nullptr);

} // namespace lergan

#endif // LERGAN_EXEC_ENGINE_HH
