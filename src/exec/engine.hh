/**
 * @file
 * Parallel point-grid execution engine.
 *
 * Runs N independent point bodies on a worker pool with slot-indexed
 * (therefore completion-order-independent) results, per-point error
 * capture and serialized progress reporting. The experiment-sweep
 * runner and any future batch driver build on this layer; the engine
 * itself knows nothing about accelerators or sweeps.
 */

#ifndef LERGAN_EXEC_ENGINE_HH
#define LERGAN_EXEC_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics.hh"

namespace lergan {

/** Progress hook: called as (points done, points total). */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/** Options of one engine-backed run (ExperimentSweep::run). */
struct RunOptions {
    /** Worker threads; 1 runs in submission order, 0 = one per
     *  hardware thread. */
    int threads = 1;
    /** Training iterations to simulate per point. */
    int iterations = 1;
    /**
     * Called after each point completes. Invocations are serialized
     * (never concurrent), but arrive in completion order: only the
     * counts are monotonic, not the identity of the finished point.
     */
    ProgressFn onProgress;
    /**
     * Collect per-point host telemetry (wall time, compile-cache hit)
     * into each result. Off by default: the extra fields change the
     * JSON/CSV exports, and per-point wall times are wall-clock facts
     * that must never enter a determinism golden.
     */
    bool pointTelemetry = false;
};

/** Execution status of one point. */
struct PointStatus {
    bool ok = true;
    /** Exception message when !ok. */
    std::string error;
    /**
     * Causal history of a failed point: the span tree resident in the
     * executing lane's flight-recorder ring at failure time, rendered
     * as text. Empty on success or when no recorder was attached.
     */
    std::string spanDump;
    /** Spans recorded for this point (0 when untraced). */
    std::uint64_t spanCount = 0;
    /**
     * Milliseconds between runPoints() entry and this point being
     * claimed by a lane — a wall-clock fact about host scheduling,
     * never part of determinism goldens. -1 when untraced.
     */
    double queueWaitMs = -1.0;
};

/** Point body: called as (point index, worker lane). The lane is a
 *  dense id in [0, pool width), stable for the body's whole run and
 *  never shared by two concurrent bodies — index per-worker scratch
 *  arenas with it. */
using PointBodyFn = std::function<void(std::size_t, std::size_t)>;

/**
 * Maps an engine point index to the TraceId its spans record under.
 * Defaults to i + 1 (trace 0 is reserved). A caller running a
 * *subset* of a larger grid (the bound-pruning batches) passes the
 * mapping back to original grid indices so a point keeps one trace id
 * across every batch it could appear in.
 */
using PointTraceIdFn = std::function<TraceId(std::size_t)>;

/**
 * Execute @p body(i, lane) for every i in [0, count) on @p threads
 * workers (0 = defaultThreadCount()) and block until all points
 * finished. Points are claimed in chunks off a shared cursor (see
 * ThreadPool::forEach), so the pool's queue lock is touched O(threads)
 * times regardless of the point count.
 *
 * A body that throws marks its own PointStatus failed with the
 * exception message; the other points are unaffected. Statuses are
 * indexed by point, so the result is deterministic regardless of the
 * order in which workers finish.
 *
 * Progress accounting exists only while @p onProgress is installed;
 * without a sink the per-point epilogue takes no lock and touches no
 * shared counter.
 *
 * When @p metrics is given, the pool's host-side stats (worker count,
 * per-worker busy time, tasks run) are recorded after the drain under
 * the "host." prefix — wall-clock facts, never part of goldens.
 *
 * When @p recorder is given, every point runs under a root "point"
 * span on its lane's flight-recorder ring: the lane is bound before
 * the body runs (so the body's own spans nest under the root), the
 * point's queue wait is attached as a host attribute, a failed point
 * gets its resident span tree dumped into PointStatus::spanDump, and
 * the per-point span count / queue wait land in the status. Trace ids
 * come from @p traceId (default: point index + 1).
 */
std::vector<PointStatus> runPoints(std::size_t count, unsigned threads,
                                   const PointBodyFn &body,
                                   const ProgressFn &onProgress = {},
                                   MetricsRegistry *metrics = nullptr,
                                   FlightRecorder *recorder = nullptr,
                                   const PointTraceIdFn &traceId = {});

} // namespace lergan

#endif // LERGAN_EXEC_ENGINE_HH
