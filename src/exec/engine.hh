/**
 * @file
 * Parallel point-grid execution engine.
 *
 * Runs N independent point bodies on a worker pool with slot-indexed
 * (therefore completion-order-independent) results, per-point error
 * capture and serialized progress reporting. The experiment-sweep
 * runner and any future batch driver build on this layer; the engine
 * itself knows nothing about accelerators or sweeps.
 */

#ifndef LERGAN_EXEC_ENGINE_HH
#define LERGAN_EXEC_ENGINE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace lergan {

/** Progress hook: called as (points done, points total). */
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/** Options of one engine-backed run (ExperimentSweep::run). */
struct RunOptions {
    /** Worker threads; 1 runs in submission order, 0 = one per
     *  hardware thread. */
    int threads = 1;
    /** Training iterations to simulate per point. */
    int iterations = 1;
    /**
     * Called after each point completes. Invocations are serialized
     * (never concurrent), but arrive in completion order: only the
     * counts are monotonic, not the identity of the finished point.
     */
    ProgressFn onProgress;
};

/** Execution status of one point. */
struct PointStatus {
    bool ok = true;
    /** Exception message when !ok. */
    std::string error;
};

/**
 * Execute @p body(i) for every i in [0, count) on @p threads workers
 * (0 = defaultThreadCount()) and block until all points finished.
 *
 * A body that throws marks its own PointStatus failed with the
 * exception message; the other points are unaffected. Statuses are
 * indexed by point, so the result is deterministic regardless of the
 * order in which workers finish.
 */
std::vector<PointStatus> runPoints(std::size_t count, unsigned threads,
                                   const std::function<void(std::size_t)> &body,
                                   const ProgressFn &onProgress = {});

} // namespace lergan

#endif // LERGAN_EXEC_ENGINE_HH
