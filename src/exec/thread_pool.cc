#include "exec/thread_pool.hh"

#include <algorithm>
#include <chrono>

namespace lergan {

unsigned
defaultThreadCount()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    busyNs_.assign(threads, 0);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    // jthread joins on destruction; workers exit once the queue drains.
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
}

std::vector<std::uint64_t>
ThreadPool::workerBusyNs() const
{
    std::lock_guard lock(mutex_);
    return busyNs_;
}

std::uint64_t
ThreadPool::tasksRun() const
{
    std::lock_guard lock(mutex_);
    return tasksRun_;
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    std::unique_lock lock(mutex_);
    for (;;) {
        workReady_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty())
            return; // stopping and nothing left to run
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        const auto begin = std::chrono::steady_clock::now();
        task();
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        lock.lock();
        busyNs_[worker] += static_cast<std::uint64_t>(ns);
        ++tasksRun_;
        --running_;
        if (queue_.empty() && running_ == 0)
            allIdle_.notify_all();
    }
}

} // namespace lergan
