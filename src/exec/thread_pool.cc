#include "exec/thread_pool.hh"

#include <algorithm>
#include <chrono>

namespace lergan {

unsigned
defaultThreadCount()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    stats_ = std::make_unique<WorkerStat[]>(threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    // jthread joins on destruction; workers exit once the queue drains.
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::forEach(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (count == 0)
        return;
    const std::size_t lanes = std::min(workers_.size(), count);
    // ~8 chunks per lane: coarse enough that the claim cursor is cold,
    // fine enough that uneven point costs still balance across lanes.
    const std::size_t chunk =
        std::max<std::size_t>(1, count / (lanes * 8));
    // Shared claiming state outlives this frame only through the
    // submitted tasks; shared_ptr keeps it alive until the last one
    // finishes (drain() below also guarantees that before we return,
    // but the destructor-drains-queue path needs the ownership too).
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto lane = std::make_shared<std::atomic<std::size_t>>(0);
    for (std::size_t t = 0; t < lanes; ++t) {
        submit([count, chunk, next, lane, &fn] {
            const std::size_t self =
                lane->fetch_add(1, std::memory_order_relaxed);
            for (;;) {
                const std::size_t begin =
                    next->fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= count)
                    return;
                const std::size_t end = std::min(begin + chunk, count);
                for (std::size_t i = begin; i < end; ++i)
                    fn(i, self);
            }
        });
    }
    drain();
}

std::vector<std::uint64_t>
ThreadPool::workerBusyNs() const
{
    std::vector<std::uint64_t> busy(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w)
        busy[w] = stats_[w].busyNs.load(std::memory_order_relaxed);
    return busy;
}

std::uint64_t
ThreadPool::tasksRun() const
{
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < workers_.size(); ++w)
        total += stats_[w].tasksRun.load(std::memory_order_relaxed);
    return total;
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    WorkerStat &stat = stats_[worker];
    std::unique_lock lock(mutex_);
    for (;;) {
        workReady_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty())
            return; // stopping and nothing left to run
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        const auto begin = std::chrono::steady_clock::now();
        task();
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        // Stats go to this worker's own padded slot — the queue lock
        // is for the queue, not for accounting.
        stat.busyNs.fetch_add(static_cast<std::uint64_t>(ns),
                              std::memory_order_relaxed);
        stat.tasksRun.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
        --running_;
        if (queue_.empty() && running_ == 0)
            allIdle_.notify_all();
    }
}

} // namespace lergan
