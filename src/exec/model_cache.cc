#include "exec/model_cache.hh"

#include <sstream>

#include "reram/params_io.hh"

namespace lergan {

namespace {

/** Stream one layer's shape-defining fields. */
void
fingerprintLayer(std::ostream &os, const LayerSpec &layer)
{
    os << static_cast<int>(layer.kind) << ',' << layer.inChannels << ','
       << layer.outChannels << ',' << layer.inSize << ',' << layer.outSize
       << ',' << layer.spatialDims << ',' << layer.kernel << ','
       << layer.stride << ',' << layer.pad << ',' << layer.padHi << ','
       << layer.rem << ';';
}

} // namespace

std::string
modelFingerprint(const GanModel &model)
{
    std::ostringstream oss;
    oss << model.name << '|' << model.itemSize << '|' << model.spatialDims
        << "|G:";
    for (const LayerSpec &layer : model.generator)
        fingerprintLayer(oss, layer);
    oss << "D:";
    for (const LayerSpec &layer : model.discriminator)
        fingerprintLayer(oss, layer);
    return oss.str();
}

std::string
configFingerprint(const AcceleratorConfig &config)
{
    std::ostringstream oss;
    oss << static_cast<int>(config.connection) << '|'
        << static_cast<int>(config.reshape) << '|'
        << static_cast<int>(config.degree) << '|' << config.duplicate
        << '|' << config.normalizedSpace << '|'
        << config.spaceBudgetCrossbars << '|' << config.cuPairs << '|'
        << config.batchSize << '|' << config.horizontalWires << '|'
        << config.verticalWires << "|pd:";
    for (const auto &[phase, degree] : config.phaseDegrees)
        oss << static_cast<int>(phase) << '=' << static_cast<int>(degree)
            << ',';
    oss << "|ft:";
    for (const auto &[bank, tile] : config.failedTiles)
        oss << bank << '.' << tile << ',';
    oss << "|flt:";
    oss.precision(17);
    oss << config.faults.seed << ',' << config.faults.cellStuckRate << ','
        << config.faults.stuckAtLrsShare << ','
        << config.faults.columnStuckRate << ','
        << config.faults.tileKillRate << ','
        << config.faults.cellTolerance << ','
        << config.faults.columnTolerance << ','
        << config.faults.tileDeadCrossbarTolerance << ','
        << config.faults.priorIterations << ','
        << config.faults.cellEndurance;
    oss << "|reram:";
    // Round-trips every tunable as "key = value" text, so two configs
    // fingerprint equal iff all device parameters agree.
    saveParams(oss, config.reram);
    return oss.str();
}

std::shared_ptr<const CompiledGan>
CompiledModelCache::get(const GanModel &model,
                        const AcceleratorConfig &config,
                        const CompileFn &compile, bool *was_hit)
{
    const std::string key =
        modelFingerprint(model) + "##" + configFingerprint(config);

    std::promise<std::shared_ptr<const CompiledGan>> promise;
    {
        std::unique_lock lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            if (was_hit)
                *was_hit = true;
            Future future = it->second;
            lock.unlock();
            return future.get(); // rethrows a racing compile's failure
        }
        ++misses_;
        if (was_hit)
            *was_hit = false;
        entries_.emplace(key, promise.get_future().share());
    }

    // Compile outside the lock: points with different keys compile in
    // parallel; racers on this key block on the shared future above.
    try {
        auto compiled =
            std::make_shared<const CompiledGan>(compile(model, config));
        promise.set_value(compiled);
        return compiled;
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard lock(mutex_);
        entries_.erase(key);
        throw;
    }
}

std::uint64_t
CompiledModelCache::hits() const
{
    std::lock_guard lock(mutex_);
    return hits_;
}

std::uint64_t
CompiledModelCache::misses() const
{
    std::lock_guard lock(mutex_);
    return misses_;
}

std::size_t
CompiledModelCache::size() const
{
    std::lock_guard lock(mutex_);
    return entries_.size();
}

void
CompiledModelCache::clear()
{
    std::lock_guard lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace lergan
