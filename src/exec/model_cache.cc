#include "exec/model_cache.hh"

#include <sstream>

#include "reram/params_io.hh"

namespace lergan {

namespace {

/** Stream one layer's shape-defining fields. */
void
fingerprintLayer(std::ostream &os, const LayerSpec &layer)
{
    os << static_cast<int>(layer.kind) << ',' << layer.inChannels << ','
       << layer.outChannels << ',' << layer.inSize << ',' << layer.outSize
       << ',' << layer.spatialDims << ',' << layer.kernel << ','
       << layer.stride << ',' << layer.pad << ',' << layer.padHi << ','
       << layer.rem << ';';
}

} // namespace

std::string
modelFingerprint(const GanModel &model)
{
    std::ostringstream oss;
    oss << model.name << '|' << model.itemSize << '|' << model.spatialDims
        << "|G:";
    for (const LayerSpec &layer : model.generator)
        fingerprintLayer(oss, layer);
    oss << "D:";
    for (const LayerSpec &layer : model.discriminator)
        fingerprintLayer(oss, layer);
    return oss.str();
}

std::string
configFingerprint(const AcceleratorConfig &config)
{
    std::ostringstream oss;
    oss << static_cast<int>(config.connection) << '|'
        << static_cast<int>(config.reshape) << '|'
        << static_cast<int>(config.degree) << '|' << config.duplicate
        << '|' << config.normalizedSpace << '|'
        << config.spaceBudgetCrossbars << '|' << config.cuPairs << '|'
        << config.batchSize << '|' << config.horizontalWires << '|'
        << config.verticalWires << "|pd:";
    for (const auto &[phase, degree] : config.phaseDegrees)
        oss << static_cast<int>(phase) << '=' << static_cast<int>(degree)
            << ',';
    oss << "|ft:";
    for (const auto &[bank, tile] : config.failedTiles)
        oss << bank << '.' << tile << ',';
    oss << "|flt:";
    oss.precision(17);
    oss << config.faults.seed << ',' << config.faults.cellStuckRate << ','
        << config.faults.stuckAtLrsShare << ','
        << config.faults.columnStuckRate << ','
        << config.faults.tileKillRate << ','
        << config.faults.cellTolerance << ','
        << config.faults.columnTolerance << ','
        << config.faults.tileDeadCrossbarTolerance << ','
        << config.faults.priorIterations << ','
        << config.faults.cellEndurance;
    oss << "|reram:";
    // Round-trips every tunable as "key = value" text, so two configs
    // fingerprint equal iff all device parameters agree.
    saveParams(oss, config.reram);
    return oss.str();
}

std::string
pairFingerprint(const GanModel &model, const AcceleratorConfig &config)
{
    return modelFingerprint(model) + "##" + configFingerprint(config);
}

std::shared_ptr<const CompiledGan>
CompiledModelCache::get(const GanModel &model,
                        const AcceleratorConfig &config,
                        const CompileFn &compile, bool *was_hit)
{
    return cache_.get(
        pairFingerprint(model, config),
        [&] {
            return std::make_shared<const CompiledGan>(
                compile(model, config));
        },
        was_hit);
}

} // namespace lergan
