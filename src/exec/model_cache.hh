/**
 * @file
 * Memoized (model, config) compilation.
 *
 * Compiling a GAN (ZFDM analysis, duplication fitting, placement) is
 * pure: the same model under the same configuration always produces the
 * same mapping. This cache keys on a structural fingerprint of both —
 * every layer field and every configuration knob including the ReRAM
 * device parameters — and hands out shared immutable CompiledGan
 * instances, so repeated runs (sessions, repeated sweeps, baselines
 * recompiled per figure) stop paying the compile cost per use.
 *
 * The concurrency machinery (build-once futures, exact hit/miss
 * counters, retry after a failed build) lives in the generic
 * MemoCache (exec/memo_cache.hh); this wrapper contributes the
 * fingerprint keys. The same fingerprints key the per-iteration DAG
 * templates (core/sweep.hh), so everything derived from a (model,
 * config) pair shares one identity.
 *
 * The compile step is injected as a callback so this module stays below
 * core in the library stack (exec does not link the compiler).
 */

#ifndef LERGAN_EXEC_MODEL_CACHE_HH
#define LERGAN_EXEC_MODEL_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/compiler.hh"
#include "exec/memo_cache.hh"

namespace lergan {

/** Structural fingerprint of a model: name plus every layer field. */
std::string modelFingerprint(const GanModel &model);

/** Fingerprint of a configuration, device parameters included. */
std::string configFingerprint(const AcceleratorConfig &config);

/** The cache key of a (model, config) pair. */
std::string pairFingerprint(const GanModel &model,
                            const AcceleratorConfig &config);

/** Shared store of compiled (model, config) mappings. */
class CompiledModelCache
{
  public:
    using CompileFn =
        std::function<CompiledGan(const GanModel &,
                                  const AcceleratorConfig &)>;

    /**
     * Return the compiled form of (@p model, @p config), invoking
     * @p compile on the first request for the pair. Concurrent first
     * requests compile once; the other callers block until the result
     * is ready. If the compile throws, every blocked caller rethrows
     * and the entry is dropped so a later request can retry.
     *
     * @param was_hit when non-null, set to whether this request was
     *        served from the cache (racers blocked on an in-flight
     *        compile count as hits, matching the counters).
     */
    std::shared_ptr<const CompiledGan> get(const GanModel &model,
                                           const AcceleratorConfig &config,
                                           const CompileFn &compile,
                                           bool *was_hit = nullptr);

    /** Requests served from the cache (exact). */
    std::uint64_t hits() const { return cache_.hits(); }

    /** Requests that had to compile (exact). */
    std::uint64_t misses() const { return cache_.misses(); }

    /** Distinct compiled mappings currently held. */
    std::size_t size() const { return cache_.size(); }

    /** Drop every entry and reset the counters. */
    void clear() { cache_.clear(); }

  private:
    MemoCache<CompiledGan> cache_;
};

} // namespace lergan

#endif // LERGAN_EXEC_MODEL_CACHE_HH
