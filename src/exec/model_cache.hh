/**
 * @file
 * Memoized (model, config) compilation.
 *
 * Compiling a GAN (ZFDM analysis, duplication fitting, placement) is
 * pure: the same model under the same configuration always produces the
 * same mapping. This cache keys on a structural fingerprint of both —
 * every layer field and every configuration knob including the ReRAM
 * device parameters — and hands out shared immutable CompiledGan
 * instances, so repeated runs (sessions, repeated sweeps, baselines
 * recompiled per figure) stop paying the compile cost per use.
 *
 * Thread safety: get() may be called concurrently. Two threads racing
 * on the same key produce exactly one compile — the loser blocks on the
 * winner's future. Hit/miss counters are exact (a blocked racer counts
 * as a hit), which the tests use to assert compile-once behavior.
 *
 * The compile step is injected as a callback so this module stays below
 * core in the library stack (exec does not link the compiler).
 */

#ifndef LERGAN_EXEC_MODEL_CACHE_HH
#define LERGAN_EXEC_MODEL_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/compiler.hh"

namespace lergan {

/** Structural fingerprint of a model: name plus every layer field. */
std::string modelFingerprint(const GanModel &model);

/** Fingerprint of a configuration, device parameters included. */
std::string configFingerprint(const AcceleratorConfig &config);

/** Shared store of compiled (model, config) mappings. */
class CompiledModelCache
{
  public:
    using CompileFn =
        std::function<CompiledGan(const GanModel &,
                                  const AcceleratorConfig &)>;

    /**
     * Return the compiled form of (@p model, @p config), invoking
     * @p compile on the first request for the pair. Concurrent first
     * requests compile once; the other callers block until the result
     * is ready. If the compile throws, every blocked caller rethrows
     * and the entry is dropped so a later request can retry.
     *
     * @param was_hit when non-null, set to whether this request was
     *        served from the cache (racers blocked on an in-flight
     *        compile count as hits, matching the counters).
     */
    std::shared_ptr<const CompiledGan> get(const GanModel &model,
                                           const AcceleratorConfig &config,
                                           const CompileFn &compile,
                                           bool *was_hit = nullptr);

    /** Requests served from the cache (exact). */
    std::uint64_t hits() const;

    /** Requests that had to compile (exact). */
    std::uint64_t misses() const;

    /** Distinct compiled mappings currently held. */
    std::size_t size() const;

    /** Drop every entry and reset the counters. */
    void clear();

  private:
    using Future =
        std::shared_future<std::shared_ptr<const CompiledGan>>;

    mutable std::mutex mutex_;
    std::map<std::string, Future> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lergan

#endif // LERGAN_EXEC_MODEL_CACHE_HH
