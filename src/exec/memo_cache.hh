/**
 * @file
 * Generic once-per-key memoization cache for expensive pure builds.
 *
 * Extracted from the compiled-model cache so other pure, structurally
 * keyed artifacts (compiled GAN mappings, per-iteration task-DAG
 * templates) share one concurrency story:
 *
 *  - get() may be called concurrently; two threads racing on the same
 *    key build exactly once — the loser blocks on the winner's future.
 *  - Hit/miss counters are exact (a blocked racer counts as a hit),
 *    which the tests use to assert build-once behavior.
 *  - If the build throws, every blocked caller rethrows and the entry
 *    is dropped, so a later request can retry.
 *
 * The store is striped for scalability: keys hash onto kStripes
 * independent stripes, and within a stripe the *hit* path is lock-free
 * — it reads an immutable published map through an atomic shared_ptr
 * and bumps a padded atomic hit counter, so a steady-state sweep (all
 * compiles warm) takes no lock on any thread. Only a miss touches the
 * stripe mutex, which implements the single-flight build: the builder
 * parks a shared future in the stripe's in-flight table, builds outside
 * the lock, then publishes a copy-on-write successor map. Racers that
 * arrive mid-build block on the future (and count as hits).
 *
 * Values are handed out as shared immutable pointers: a cached value
 * may be used concurrently from many worker threads, so Value must be
 * safe to read (not mutate) in parallel.
 */

#ifndef LERGAN_EXEC_MEMO_CACHE_HH
#define LERGAN_EXEC_MEMO_CACHE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lergan {

/** Keyed build-once store of shared immutable values. */
template <typename Value>
class MemoCache
{
  public:
    using BuildFn = std::function<std::shared_ptr<const Value>()>;

    MemoCache()
    {
        for (Stripe &stripe : stripes_)
            stripe.published.store(std::make_shared<const Map>(),
                                   std::memory_order_relaxed);
    }

    /**
     * Return the value of @p key, invoking @p build on the first
     * request. Concurrent first requests build once; the other callers
     * block until the result is ready.
     *
     * @param was_hit when non-null, set to whether this request was
     *        served from the cache (racers blocked on an in-flight
     *        build count as hits, matching the counters).
     */
    std::shared_ptr<const Value>
    get(const std::string &key, const BuildFn &build,
        bool *was_hit = nullptr)
    {
        Stripe &stripe = stripeFor(key);
        {
            // Lock-free fast path: published maps are immutable, so a
            // hit needs only the atomic pointer load (acquire pairs
            // with the publishing store) and a counter bump.
            const std::shared_ptr<const Map> published =
                stripe.published.load(std::memory_order_acquire);
            if (auto it = published->find(key); it != published->end()) {
                stripe.hits.fetch_add(1, std::memory_order_relaxed);
                if (was_hit)
                    *was_hit = true;
                return it->second;
            }
        }

        std::promise<std::shared_ptr<const Value>> promise;
        {
            std::unique_lock lock(stripe.mutex);
            // Re-check under the stripe lock: the key may have been
            // published — or its build may be in flight — since the
            // fast-path miss.
            const std::shared_ptr<const Map> published =
                stripe.published.load(std::memory_order_acquire);
            if (auto it = published->find(key); it != published->end()) {
                stripe.hits.fetch_add(1, std::memory_order_relaxed);
                if (was_hit)
                    *was_hit = true;
                return it->second;
            }
            if (auto it = stripe.inflight.find(key);
                it != stripe.inflight.end()) {
                stripe.hits.fetch_add(1, std::memory_order_relaxed);
                if (was_hit)
                    *was_hit = true;
                Future future = it->second;
                lock.unlock();
                return future.get(); // rethrows a racing build's failure
            }
            stripe.misses.fetch_add(1, std::memory_order_relaxed);
            if (was_hit)
                *was_hit = false;
            stripe.inflight.emplace(key, promise.get_future().share());
        }

        // Build outside the lock: different keys build in parallel;
        // racers on this key block on the shared future above.
        try {
            std::shared_ptr<const Value> value = build();
            {
                std::lock_guard lock(stripe.mutex);
                // Copy-on-write publish: successor map replaces the
                // published pointer, then the in-flight entry goes away
                // (same critical section, so every racer sees the key
                // in exactly one of the two tables).
                auto next = std::make_shared<Map>(*stripe.published.load(
                    std::memory_order_relaxed));
                (*next)[key] = value;
                stripe.published.store(
                    std::shared_ptr<const Map>(std::move(next)),
                    std::memory_order_release);
                stripe.inflight.erase(key);
            }
            promise.set_value(value);
            return value;
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard lock(stripe.mutex);
            stripe.inflight.erase(key);
            throw;
        }
    }

    /** Requests served from the cache (exact). */
    std::uint64_t
    hits() const
    {
        std::uint64_t total = 0;
        for (const Stripe &stripe : stripes_)
            total += stripe.hits.load(std::memory_order_relaxed);
        return total;
    }

    /** Requests that had to build (exact). */
    std::uint64_t
    misses() const
    {
        std::uint64_t total = 0;
        for (const Stripe &stripe : stripes_)
            total += stripe.misses.load(std::memory_order_relaxed);
        return total;
    }

    /** Distinct values currently held (published + building). */
    std::size_t
    size() const
    {
        std::size_t total = 0;
        for (const Stripe &stripe : stripes_) {
            std::lock_guard lock(stripe.mutex);
            total += stripe.published.load(std::memory_order_relaxed)
                         ->size() +
                     stripe.inflight.size();
        }
        return total;
    }

    /** Drop every entry and reset the counters. */
    void
    clear()
    {
        for (Stripe &stripe : stripes_) {
            std::lock_guard lock(stripe.mutex);
            stripe.published.store(std::make_shared<const Map>(),
                                   std::memory_order_release);
            stripe.inflight.clear();
            stripe.hits.store(0, std::memory_order_relaxed);
            stripe.misses.store(0, std::memory_order_relaxed);
        }
    }

  private:
    using Map = std::map<std::string, std::shared_ptr<const Value>>;
    using Future = std::shared_future<std::shared_ptr<const Value>>;

    /** Stripe count: a power of two well above the worker counts in
     *  use, so concurrent misses on different keys rarely collide. */
    static constexpr std::size_t kStripes = 16;

    struct alignas(64) Stripe {
        /** Immutable snapshot of this stripe's completed entries; the
         *  hit path reads it without the mutex. */
        std::atomic<std::shared_ptr<const Map>> published;
        mutable std::mutex mutex;
        /** Single-flight table of builds in progress (guarded by
         *  mutex). */
        std::map<std::string, Future> inflight;
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
    };

    Stripe &
    stripeFor(const std::string &key)
    {
        return stripes_[std::hash<std::string>{}(key) % kStripes];
    }

    std::array<Stripe, kStripes> stripes_;
};

} // namespace lergan

#endif // LERGAN_EXEC_MEMO_CACHE_HH
