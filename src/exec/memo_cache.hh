/**
 * @file
 * Generic once-per-key memoization cache for expensive pure builds.
 *
 * Extracted from the compiled-model cache so other pure, structurally
 * keyed artifacts (compiled GAN mappings, per-iteration task-DAG
 * templates) share one concurrency story:
 *
 *  - get() may be called concurrently; two threads racing on the same
 *    key build exactly once — the loser blocks on the winner's future.
 *  - Hit/miss counters are exact (a blocked racer counts as a hit),
 *    which the tests use to assert build-once behavior.
 *  - If the build throws, every blocked caller rethrows and the entry
 *    is dropped, so a later request can retry.
 *
 * Values are handed out as shared immutable pointers: a cached value
 * may be used concurrently from many worker threads, so Value must be
 * safe to read (not mutate) in parallel.
 */

#ifndef LERGAN_EXEC_MEMO_CACHE_HH
#define LERGAN_EXEC_MEMO_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lergan {

/** Keyed build-once store of shared immutable values. */
template <typename Value>
class MemoCache
{
  public:
    using BuildFn = std::function<std::shared_ptr<const Value>()>;

    /**
     * Return the value of @p key, invoking @p build on the first
     * request. Concurrent first requests build once; the other callers
     * block until the result is ready.
     *
     * @param was_hit when non-null, set to whether this request was
     *        served from the cache (racers blocked on an in-flight
     *        build count as hits, matching the counters).
     */
    std::shared_ptr<const Value>
    get(const std::string &key, const BuildFn &build,
        bool *was_hit = nullptr)
    {
        std::promise<std::shared_ptr<const Value>> promise;
        {
            std::unique_lock lock(mutex_);
            auto it = entries_.find(key);
            if (it != entries_.end()) {
                ++hits_;
                if (was_hit)
                    *was_hit = true;
                Future future = it->second;
                lock.unlock();
                return future.get(); // rethrows a racing build's failure
            }
            ++misses_;
            if (was_hit)
                *was_hit = false;
            entries_.emplace(key, promise.get_future().share());
        }

        // Build outside the lock: different keys build in parallel;
        // racers on this key block on the shared future above.
        try {
            std::shared_ptr<const Value> value = build();
            promise.set_value(value);
            return value;
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard lock(mutex_);
            entries_.erase(key);
            throw;
        }
    }

    /** Requests served from the cache (exact). */
    std::uint64_t
    hits() const
    {
        std::lock_guard lock(mutex_);
        return hits_;
    }

    /** Requests that had to build (exact). */
    std::uint64_t
    misses() const
    {
        std::lock_guard lock(mutex_);
        return misses_;
    }

    /** Distinct values currently held. */
    std::size_t
    size() const
    {
        std::lock_guard lock(mutex_);
        return entries_.size();
    }

    /** Drop every entry and reset the counters. */
    void
    clear()
    {
        std::lock_guard lock(mutex_);
        entries_.clear();
        hits_ = 0;
        misses_ = 0;
    }

  private:
    using Future = std::shared_future<std::shared_ptr<const Value>>;

    mutable std::mutex mutex_;
    std::map<std::string, Future> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lergan

#endif // LERGAN_EXEC_MEMO_CACHE_HH
