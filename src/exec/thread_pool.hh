/**
 * @file
 * Fixed-size worker thread pool.
 *
 * A minimal mutex/condvar work queue feeding std::jthread workers — no
 * external dependencies. Experiment points run for milliseconds while
 * queue operations take nanoseconds, so a single queue lock is not a
 * bottleneck; what matters is that submission never blocks behind
 * running tasks and that drain/destruction are clean.
 *
 * Tasks must not let exceptions escape: the pool has nowhere to deliver
 * them (the engine layer wraps point bodies in a catch-all and records
 * failures per point instead).
 */

#ifndef LERGAN_EXEC_THREAD_POOL_HH
#define LERGAN_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lergan {

/** Workers used for a "0 = auto" thread count: one per hardware thread. */
unsigned defaultThreadCount();

/** Fixed-size pool executing submitted tasks in FIFO order. */
class ThreadPool
{
  public:
    /** Start @p threads workers (0 = defaultThreadCount()). */
    explicit ThreadPool(unsigned threads = 0);

    /** Runs every remaining task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; returns immediately. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and every worker is idle. */
    void drain();

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Wall time each worker has spent inside tasks so far, indexed by
     * worker. Host-side observability: which workers the sweep engine
     * actually kept busy (reported under the "host." metric prefix, so
     * never part of a determinism golden).
     */
    std::vector<std::uint64_t> workerBusyNs() const;

    /** Total tasks completed by all workers. */
    std::uint64_t tasksRun() const;

  private:
    void workerLoop(std::size_t worker);

    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_;
    /** Tasks currently executing on some worker. */
    std::size_t running_ = 0;
    bool stopping_ = false;
    /** Per-worker time spent inside task() (guarded by mutex_). */
    std::vector<std::uint64_t> busyNs_;
    std::uint64_t tasksRun_ = 0;
    std::vector<std::jthread> workers_;
};

} // namespace lergan

#endif // LERGAN_EXEC_THREAD_POOL_HH
