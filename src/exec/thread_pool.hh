/**
 * @file
 * Fixed-size worker thread pool.
 *
 * A minimal mutex/condvar work queue feeding std::jthread workers — no
 * external dependencies. The queue is for coarse tasks; bulk point
 * grids go through forEach(), which pushes only one claiming task per
 * worker through the queue and lets the workers carve the index range
 * into chunks off a shared atomic cursor — the mutex/condvar pair is
 * touched O(workers) times per grid, not O(points). Per-worker stats
 * (busy time, tasks run) live in cache-line-padded atomic slots, so
 * task completion never takes the queue lock either.
 *
 * Tasks must not let exceptions escape: the pool has nowhere to deliver
 * them (the engine layer wraps point bodies in a catch-all and records
 * failures per point instead).
 */

#ifndef LERGAN_EXEC_THREAD_POOL_HH
#define LERGAN_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lergan {

/** Workers used for a "0 = auto" thread count: one per hardware thread. */
unsigned defaultThreadCount();

/** Fixed-size pool executing submitted tasks in FIFO order. */
class ThreadPool
{
  public:
    /** Start @p threads workers (0 = defaultThreadCount()). */
    explicit ThreadPool(unsigned threads = 0);

    /** Runs every remaining task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; returns immediately. */
    void submit(std::function<void()> task);

    /**
     * Run @p fn(index, lane) for every index in [0, count) across the
     * pool and block until all of them finished.
     *
     * Chunked claiming: one claiming task per worker enters the queue;
     * each claims contiguous index chunks off a shared atomic cursor
     * until the range is exhausted. @p fn's second argument is the
     * claiming task's dense lane id in [0, min(threadCount(), count))
     * — stable for the whole call and never used by two concurrent
     * bodies, so callers can index per-worker scratch arenas with it.
     *
     * With one worker the indexes run in ascending order; with more,
     * chunks interleave arbitrarily (callers must make bodies
     * order-independent, as with submit()).
     *
     * @p fn must not throw (same contract as submitted tasks).
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t, std::size_t)> &fn);

    /** Block until the queue is empty and every worker is idle. */
    void drain();

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Wall time each worker has spent inside tasks so far, indexed by
     * worker. Host-side observability: which workers the sweep engine
     * actually kept busy (reported under the "host." metric prefix, so
     * never part of a determinism golden).
     */
    std::vector<std::uint64_t> workerBusyNs() const;

    /** Total tasks completed by all workers. */
    std::uint64_t tasksRun() const;

  private:
    void workerLoop(std::size_t worker);

    /** Per-worker stats in a padded slot: workers update their own
     *  line without the queue lock and without false sharing. */
    struct alignas(64) WorkerStat {
        std::atomic<std::uint64_t> busyNs{0};
        std::atomic<std::uint64_t> tasksRun{0};
    };

    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_;
    /** Tasks currently executing on some worker. */
    std::size_t running_ = 0;
    bool stopping_ = false;
    std::unique_ptr<WorkerStat[]> stats_;
    std::vector<std::jthread> workers_;
};

} // namespace lergan

#endif // LERGAN_EXEC_THREAD_POOL_HH
